//! Memory-system geometry and policy configuration.

use crate::address::MappingScheme;
use crate::timing::DramTiming;
use crate::{DramError, ACCESS_BYTES};

/// Physical organization of the memory system.
///
/// All counts must be powers of two (the address mapping peels bit fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Independent memory channels (each with its own controller and bus).
    pub channels: usize,
    /// Ranks sharing each channel's bus.
    pub ranks_per_channel: usize,
    /// DDR4 bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Columns per row, in 64-byte (burst) granularity.
    pub columns: usize,
    /// Data-bus width in bytes (8 for an x64 DIMM).
    pub bus_bytes: usize,
}

impl Geometry {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels as u64
            * self.ranks_per_channel as u64
            * self.bank_groups as u64
            * self.banks_per_group as u64
            * self.rows as u64
            * self.columns as u64
            * ACCESS_BYTES
    }

    /// Row-buffer size in bytes (per rank-bank).
    pub fn row_bytes(&self) -> u64 {
        self.columns as u64 * ACCESS_BYTES
    }

    /// Total banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    fn validate(&self) -> Result<(), DramError> {
        let checks = [
            ("channels", self.channels),
            ("ranks_per_channel", self.ranks_per_channel),
            ("bank_groups", self.bank_groups),
            ("banks_per_group", self.banks_per_group),
            ("rows", self.rows),
            ("columns", self.columns),
            ("bus_bytes", self.bus_bytes),
        ];
        for (parameter, value) in checks {
            if value == 0 || !value.is_power_of_two() {
                return Err(DramError::InvalidGeometry { parameter, value });
            }
        }
        Ok(())
    }
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Leave rows open after column accesses (exploits locality; pays a
    /// precharge on conflicts).
    #[default]
    OpenPage,
    /// Auto-precharge after every column access (RDA/WRA).
    ClosedPage,
}

/// Request scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// First-ready, first-come-first-served: row hits first, then oldest.
    #[default]
    FrFcfs,
    /// Strict in-order service of the request queue head.
    Fcfs,
}

/// Full configuration of a [`crate::MemorySystem`].
///
/// # Example
///
/// ```
/// use tensordimm_dram::DramConfig;
///
/// let cfg = DramConfig::cpu_memory(8);
/// assert_eq!(cfg.geometry.channels, 8);
/// assert!((cfg.peak_gbps() - 204.8).abs() < 1e-9);
/// cfg.validate()?;
/// # Ok::<(), tensordimm_dram::DramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Timing parameters (speed grade).
    pub timing: DramTiming,
    /// Physical organization.
    pub geometry: Geometry,
    /// Physical-to-DRAM address mapping.
    pub mapping: MappingScheme,
    /// Row-buffer policy.
    pub row_policy: RowPolicy,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Per-channel read-queue capacity.
    pub read_queue_depth: usize,
    /// Per-channel write-queue capacity.
    pub write_queue_depth: usize,
    /// Switch the channel to write draining above this write-queue level.
    pub write_high_watermark: usize,
    /// Return to read service below this write-queue level.
    pub write_low_watermark: usize,
    /// Whether periodic refresh is simulated.
    pub refresh_enabled: bool,
}

impl DramConfig {
    /// A single DDR4-3200 channel with four ranks — the local memory of one
    /// TensorDIMM (25.6 GB/s, Table 1; the 128 GB LR-DIMM the paper cites
    /// stacks multiple internal ranks) using the streaming-friendly
    /// NMP-local mapping.
    pub fn ddr4_3200_channel() -> Self {
        let geometry = Geometry {
            channels: 1,
            ranks_per_channel: 4,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 1 << 16,
            columns: 128,
            bus_bytes: 8,
        };
        DramConfig {
            timing: DramTiming::ddr4_3200(),
            mapping: MappingScheme::nmp_local(&geometry),
            geometry,
            row_policy: RowPolicy::OpenPage,
            scheduler: SchedulerKind::FrFcfs,
            read_queue_depth: 64,
            write_queue_depth: 64,
            write_high_watermark: 48,
            write_low_watermark: 16,
            refresh_enabled: true,
        }
    }

    /// The baseline CPU memory system: `channels` DDR4-3200 channels, four
    /// ranks each, conventional channel-interleaved mapping. The paper's
    /// baseline (NVIDIA DGX host) has 8 channels = 204.8 GB/s peak,
    /// time-multiplexed over however many DIMMs are installed.
    pub fn cpu_memory(channels: usize) -> Self {
        let geometry = Geometry {
            channels,
            ranks_per_channel: 4,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 1 << 16,
            columns: 128,
            bus_bytes: 8,
        };
        DramConfig {
            timing: DramTiming::ddr4_3200(),
            mapping: MappingScheme::channel_interleaved(&geometry),
            geometry,
            row_policy: RowPolicy::OpenPage,
            scheduler: SchedulerKind::FrFcfs,
            read_queue_depth: 64,
            write_queue_depth: 64,
            write_high_watermark: 48,
            write_low_watermark: 16,
            refresh_enabled: true,
        }
    }

    /// Replace the address mapping, keeping everything else.
    pub fn with_mapping(mut self, mapping: MappingScheme) -> Self {
        self.mapping = mapping;
        self
    }

    /// Replace the scheduler policy, keeping everything else.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Replace the row policy, keeping everything else.
    pub fn with_row_policy(mut self, row_policy: RowPolicy) -> Self {
        self.row_policy = row_policy;
        self
    }

    /// Theoretical peak bandwidth across all channels, GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.timing.peak_gbps(self.geometry.bus_bytes as u64) * self.geometry.channels as f64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.geometry.capacity_bytes()
    }

    /// Validate geometry, timing, mapping and queue parameters.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found; see [`DramError`].
    pub fn validate(&self) -> Result<(), DramError> {
        self.geometry.validate()?;
        self.timing.validate()?;
        self.mapping.validate(&self.geometry)?;
        if self.read_queue_depth == 0 {
            return Err(DramError::InvalidGeometry {
                parameter: "read_queue_depth",
                value: 0,
            });
        }
        if self.write_queue_depth == 0 {
            return Err(DramError::InvalidGeometry {
                parameter: "write_queue_depth",
                value: 0,
            });
        }
        if self.write_low_watermark >= self.write_high_watermark
            || self.write_high_watermark > self.write_queue_depth
        {
            return Err(DramError::InvalidTiming {
                reason: "write watermarks must satisfy low < high <= depth",
            });
        }
        Ok(())
    }
}

impl Default for DramConfig {
    /// Defaults to a single TensorDIMM-local DDR4-3200 channel.
    fn default() -> Self {
        DramConfig::ddr4_3200_channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DramConfig::ddr4_3200_channel().validate().unwrap();
        DramConfig::cpu_memory(8).validate().unwrap();
        DramConfig::cpu_memory(1).validate().unwrap();
    }

    #[test]
    fn peak_bandwidth() {
        assert!((DramConfig::ddr4_3200_channel().peak_gbps() - 25.6).abs() < 1e-9);
        assert!((DramConfig::cpu_memory(8).peak_gbps() - 204.8).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_product_of_geometry() {
        let cfg = DramConfig::ddr4_3200_channel();
        let g = cfg.geometry;
        assert_eq!(
            cfg.capacity_bytes(),
            (g.ranks_per_channel * g.bank_groups * g.banks_per_group) as u64
                * g.rows as u64
                * g.columns as u64
                * 64
        );
        // 4 ranks x 16 banks x 64Ki rows x 8 KiB rows = 32 GiB.
        assert_eq!(cfg.capacity_bytes(), 32 << 30);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.geometry.rows = 1000;
        assert!(matches!(
            cfg.validate(),
            Err(DramError::InvalidGeometry {
                parameter: "rows",
                ..
            })
        ));
    }

    #[test]
    fn bad_watermarks_rejected() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.write_low_watermark = cfg.write_high_watermark;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_style_updates() {
        let cfg = DramConfig::ddr4_3200_channel()
            .with_scheduler(SchedulerKind::Fcfs)
            .with_row_policy(RowPolicy::ClosedPage);
        assert_eq!(cfg.scheduler, SchedulerKind::Fcfs);
        assert_eq!(cfg.row_policy, RowPolicy::ClosedPage);
    }
}
