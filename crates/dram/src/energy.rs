//! DDR4 energy model.
//!
//! Extends the paper's system-power analysis (Section 6.5, which stops at
//! a per-DIMM TDP from Micron's calculator) down to per-operation energy:
//! command-level dynamic energy derived from IDD-class currents plus
//! rank-count-scaled background power. The constants are representative
//! DDR4-3200 x8 values; the model's purpose is comparing *operations and
//! mappings*, not absolute joules.

use crate::stats::MemoryStats;

/// Energy cost constants for one DDR4 device generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one ACTIVATE + PRECHARGE pair (row cycle), nanojoules.
    pub act_pre_nj: f64,
    /// Energy of one 64-byte read burst, nanojoules.
    pub read_nj: f64,
    /// Energy of one 64-byte write burst, nanojoules.
    pub write_nj: f64,
    /// Energy of one all-bank refresh, nanojoules.
    pub refresh_nj: f64,
    /// Background (standby) power per rank, milliwatts.
    pub background_mw_per_rank: f64,
}

impl EnergyModel {
    /// Representative DDR4-3200 x8 rank values.
    pub fn ddr4_3200() -> Self {
        EnergyModel {
            act_pre_nj: 2.1,
            read_nj: 1.8,
            write_nj: 1.9,
            refresh_nj: 90.0,
            background_mw_per_rank: 130.0,
        }
    }

    /// Energy report for a finished simulation over `ranks` total ranks.
    pub fn report(&self, stats: &MemoryStats, ranks: usize) -> EnergyReport {
        let t = &stats.totals;
        let dynamic_nj = t.activates as f64 * self.act_pre_nj
            + t.reads as f64 * self.read_nj
            + t.writes as f64 * self.write_nj
            + t.refreshes as f64 * self.refresh_nj;
        let seconds = stats.elapsed_ns() * 1e-9;
        let background_nj = self.background_mw_per_rank * 1e-3 * ranks as f64 * seconds * 1e9;
        EnergyReport {
            dynamic_nj,
            background_nj,
            bytes: stats.bytes_transferred(),
            seconds,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::ddr4_3200()
    }
}

/// Energy consumed by a simulated interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Command-level (dynamic) energy, nanojoules.
    pub dynamic_nj: f64,
    /// Standby (background) energy over the interval, nanojoules.
    pub background_nj: f64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Interval length in seconds.
    pub seconds: f64,
}

impl EnergyReport {
    /// Total energy, nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj + self.background_nj
    }

    /// Energy efficiency in picojoules per bit moved.
    pub fn pj_per_bit(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.total_nj() * 1e3 / (self.bytes as f64 * 8.0)
        }
    }

    /// Average power over the interval, watts.
    pub fn average_watts(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.total_nj() * 1e-9 / self.seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use crate::request::Request;
    use crate::system::MemorySystem;

    fn run(addresses: impl Iterator<Item = u64>) -> MemoryStats {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg).unwrap();
        for a in addresses {
            mem.push_when_ready(Request::read(a));
        }
        mem.run_to_completion();
        mem.stats()
    }

    #[test]
    fn sequential_beats_random_in_pj_per_bit() {
        let model = EnergyModel::ddr4_3200();
        let seq = model.report(&run((0..4096u64).map(|i| i * 64)), 4);
        let mut x = 0x2545f4914f6cdd1du64;
        let cap = DramConfig::ddr4_3200_channel().capacity_bytes();
        let rnd = model.report(
            &run((0..4096u64).map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % cap) & !63
            })),
            4,
        );
        // Random traffic activates a row per burst: strictly worse energy.
        assert!(
            rnd.pj_per_bit() > 1.5 * seq.pj_per_bit(),
            "random {:.1} vs sequential {:.1} pJ/bit",
            rnd.pj_per_bit(),
            seq.pj_per_bit()
        );
    }

    #[test]
    fn sane_magnitudes() {
        let model = EnergyModel::ddr4_3200();
        let r = model.report(&run((0..4096u64).map(|i| i * 64)), 4);
        // DDR4 lands in the 5-40 pJ/bit range depending on locality.
        assert!(
            (2.0..60.0).contains(&r.pj_per_bit()),
            "{} pJ/bit",
            r.pj_per_bit()
        );
        assert!(r.average_watts() > 0.1 && r.average_watts() < 30.0);
        assert!(r.total_nj() > 0.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = EnergyReport {
            dynamic_nj: 0.0,
            background_nj: 0.0,
            bytes: 0,
            seconds: 0.0,
        };
        assert_eq!(r.pj_per_bit(), 0.0);
        assert_eq!(r.average_watts(), 0.0);
    }

    #[test]
    fn background_scales_with_ranks() {
        let model = EnergyModel::ddr4_3200();
        let stats = run((0..1024u64).map(|i| i * 64));
        let one = model.report(&stats, 1);
        let four = model.report(&stats, 4);
        assert!((four.background_nj - 4.0 * one.background_nj).abs() < 1e-6);
        assert_eq!(one.dynamic_nj, four.dynamic_nj);
    }
}
