//! Physical-address to DRAM-coordinate mapping.
//!
//! The paper's key software-architecture component is an address-mapping
//! scheme (Fig. 7) that stripes consecutive 64-byte blocks of an embedding
//! vector across ranks so every NMP core works on its own slice of every
//! tensor concurrently. This module implements that mapping along with the
//! conventional mappings it is compared against, as an ordered list of
//! bit-fields peeled off a physical address from least- to most-significant
//! bit (above the 6-bit intra-burst offset).

use crate::config::Geometry;
use crate::{DramError, ACCESS_BYTES};

/// A DRAM coordinate: which channel / rank / bank-group / bank / row / column
/// a physical address maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DramAddr {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank group within the rank.
    pub bank_group: usize,
    /// Bank within the bank group.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Column in 64-byte (burst) granularity.
    pub column: usize,
}

impl DramAddr {
    /// Flat bank index within a rank (`bank_group * banks_per_group + bank`).
    pub fn flat_bank(&self, banks_per_group: usize) -> usize {
        self.bank_group * banks_per_group + self.bank
    }
}

/// Address-mapping field identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// Memory channel bits.
    Channel,
    /// Rank bits (a TensorDIMM maps to one or more ranks).
    Rank,
    /// Bank-group bits.
    BankGroup,
    /// Bank-within-group bits.
    Bank,
    /// Row bits.
    Row,
    /// Column bits (64-byte granularity; may be split across entries).
    Column,
}

/// An ordered physical-address bit layout.
///
/// Fields are listed from least- to most-significant bit, starting right
/// above the 6-bit burst offset. A field may appear multiple times (columns
/// are commonly split around bank bits).
///
/// # Example
///
/// The paper's rank-interleaved mapping places rank bits at the lowest
/// position, so consecutive 64-byte blocks land on consecutive ranks:
///
/// ```
/// use tensordimm_dram::{DramConfig, MappingScheme};
///
/// let geom = DramConfig::ddr4_3200_channel().geometry;
/// let map = MappingScheme::rank_interleaved(&geom);
/// let a = map.decode(0, &geom)?;
/// let b = map.decode(64, &geom)?;
/// assert_eq!(a.rank, 0);
/// assert_eq!(b.rank, 1);
/// # Ok::<(), tensordimm_dram::DramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingScheme {
    fields: Vec<(Field, u32)>,
    /// XOR-permute bank and bank-group bits with low row bits. This is the
    /// classic conflict-avoidance permutation real controllers apply: two
    /// sequential streams at different rows then occupy different bank
    /// sequences instead of chasing each other's open rows.
    bank_xor: bool,
}

fn bits_for(n: usize) -> u32 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros()
}

impl MappingScheme {
    /// Build a mapping from an explicit LSB-to-MSB field list.
    ///
    /// Prefer the named constructors; this is the escape hatch for mapping
    /// ablation studies.
    pub fn from_fields(fields: Vec<(Field, u32)>) -> Self {
        MappingScheme {
            fields,
            bank_xor: false,
        }
    }

    /// Enable or disable the bank/bank-group XOR permutation.
    pub fn with_bank_xor(mut self, enabled: bool) -> Self {
        self.bank_xor = enabled;
        self
    }

    /// Whether the bank XOR permutation is active.
    pub fn bank_xor(&self) -> bool {
        self.bank_xor
    }

    /// Apply the (self-inverse) bank permutation: the row number is
    /// XOR-folded down to `bank + bank-group` bits and XORed into those
    /// fields, so streams whose rows differ by *any* amount land on
    /// different bank sequences.
    fn permute(&self, mut addr: DramAddr, geom: &Geometry) -> DramAddr {
        if self.bank_xor {
            let bank_bits = bits_for(geom.banks_per_group);
            let bg_bits = bits_for(geom.bank_groups);
            let width = (bank_bits + bg_bits).max(1);
            let mask = (1usize << width) - 1;
            let mut rest = addr.row;
            let mut folded = 0usize;
            while rest != 0 {
                folded ^= rest & mask;
                rest >>= width;
            }
            addr.bank ^= folded & (geom.banks_per_group - 1);
            addr.bank_group ^= (folded >> bank_bits) & (geom.bank_groups - 1);
        }
        addr
    }

    /// The paper's mapping (Fig. 7): rank bits immediately above the 64-byte
    /// offset, so consecutive blocks of an embedding interleave across ranks
    /// (equivalently, across TensorDIMMs); then a few low column bits, bank
    /// and bank-group bits, the remaining column bits, the row, and channel.
    pub fn rank_interleaved(geom: &Geometry) -> Self {
        let col_bits = bits_for(geom.columns);
        let col_low = col_bits.min(2);
        let col_high = col_bits - col_low;
        let mut fields = vec![(Field::Rank, bits_for(geom.ranks_per_channel))];
        fields.push((Field::Column, col_low));
        fields.push((Field::BankGroup, bits_for(geom.bank_groups)));
        fields.push((Field::Bank, bits_for(geom.banks_per_group)));
        fields.push((Field::Column, col_high));
        fields.push((Field::Row, bits_for(geom.rows)));
        fields.push((Field::Channel, bits_for(geom.channels)));
        MappingScheme {
            fields,
            bank_xor: false,
        }
        .without_empty()
    }

    /// Conventional CPU-memory mapping: channel bits at the lowest position
    /// (64-byte channel interleave), then bank-group bits (so back-to-back
    /// column bursts alternate bank groups and dodge tCCD_L), low column
    /// bits, bank, rank, remaining column bits and row.
    ///
    /// This is the baseline mapping for the "embeddings inside CPU" design
    /// points: the channel count fixes peak bandwidth regardless of how many
    /// DIMMs populate each channel.
    pub fn channel_interleaved(geom: &Geometry) -> Self {
        let col_bits = bits_for(geom.columns);
        let col_low = col_bits.min(3);
        let col_high = col_bits - col_low;
        let fields = vec![
            (Field::Channel, bits_for(geom.channels)),
            (Field::BankGroup, bits_for(geom.bank_groups)),
            (Field::Column, col_low),
            (Field::Bank, bits_for(geom.banks_per_group)),
            (Field::Rank, bits_for(geom.ranks_per_channel)),
            (Field::Column, col_high),
            (Field::Row, bits_for(geom.rows)),
        ];
        MappingScheme {
            fields,
            bank_xor: true,
        }
        .without_empty()
    }

    /// The mapping an NMP-local memory controller uses for the DRAM chips
    /// *inside* one TensorDIMM: bank-group bits lowest (consecutive bursts
    /// alternate groups, sustaining tCCD_S pacing), then low column bits,
    /// bank and internal-rank bits (an LR-DIMM stacks several ranks, giving
    /// the activate headroom random gathers need), then the remaining
    /// column bits and row.
    ///
    /// Node-level striping across TensorDIMMs is [`rank_interleaved`]
    /// applied at the pool level; this mapping governs locality *within*
    /// the DIMM after the `block / node_dim` lowering.
    ///
    /// [`rank_interleaved`]: MappingScheme::rank_interleaved
    pub fn nmp_local(geom: &Geometry) -> Self {
        let col_bits = bits_for(geom.columns);
        let col_low = col_bits.min(2);
        let col_high = col_bits - col_low;
        let fields = vec![
            (Field::BankGroup, bits_for(geom.bank_groups)),
            (Field::Column, col_low),
            (Field::Bank, bits_for(geom.banks_per_group)),
            (Field::Rank, bits_for(geom.ranks_per_channel)),
            (Field::Column, col_high),
            (Field::Row, bits_for(geom.rows)),
            (Field::Channel, bits_for(geom.channels)),
        ];
        MappingScheme {
            fields,
            bank_xor: true,
        }
        .without_empty()
    }

    /// Ablation mapping: rank selected by the *highest* bits, so an entire
    /// embedding vector (indeed an entire table shard) resides within a
    /// single rank and NMP cores serialize instead of cooperating.
    ///
    /// Used to demonstrate why Fig. 7's interleaving is load-bearing.
    pub fn vector_per_rank(geom: &Geometry) -> Self {
        let fields = vec![
            (Field::Column, bits_for(geom.columns)),
            (Field::BankGroup, bits_for(geom.bank_groups)),
            (Field::Bank, bits_for(geom.banks_per_group)),
            (Field::Row, bits_for(geom.rows)),
            (Field::Rank, bits_for(geom.ranks_per_channel)),
            (Field::Channel, bits_for(geom.channels)),
        ];
        MappingScheme {
            fields,
            bank_xor: false,
        }
        .without_empty()
    }

    fn without_empty(mut self) -> Self {
        self.fields.retain(|&(_, bits)| bits > 0);
        self
    }

    /// Total mapped bits (excluding the 6-bit burst offset).
    pub fn total_bits(&self) -> u32 {
        self.fields.iter().map(|&(_, b)| b).sum()
    }

    /// Bits mapped for one field, summed across split entries.
    pub fn field_bits(&self, field: Field) -> u32 {
        self.fields
            .iter()
            .filter(|&&(f, _)| f == field)
            .map(|&(_, b)| b)
            .sum()
    }

    /// The ordered field list (LSB to MSB above the burst offset).
    pub fn fields(&self) -> &[(Field, u32)] {
        &self.fields
    }

    /// Check the mapping covers exactly the geometry's address bits.
    pub fn validate(&self, geom: &Geometry) -> Result<(), DramError> {
        let expect = [
            (Field::Channel, bits_for(geom.channels)),
            (Field::Rank, bits_for(geom.ranks_per_channel)),
            (Field::BankGroup, bits_for(geom.bank_groups)),
            (Field::Bank, bits_for(geom.banks_per_group)),
            (Field::Row, bits_for(geom.rows)),
            (Field::Column, bits_for(geom.columns)),
        ];
        for (field, required_bits) in expect {
            let mapped_bits = self.field_bits(field);
            if mapped_bits != required_bits {
                return Err(DramError::MappingMismatch {
                    field,
                    mapped_bits,
                    required_bits,
                });
            }
        }
        Ok(())
    }

    /// Decode a physical byte address into a DRAM coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] if the address exceeds the
    /// geometry's capacity.
    pub fn decode(&self, addr: u64, geom: &Geometry) -> Result<DramAddr, DramError> {
        let capacity = geom.capacity_bytes();
        if addr >= capacity {
            return Err(DramError::AddressOutOfRange { addr, capacity });
        }
        let mut rest = addr / ACCESS_BYTES;
        let mut out = DramAddr::default();
        let mut seen = [0u32; 6];
        for &(field, bits) in &self.fields {
            let val = (rest & ((1u64 << bits) - 1)) as usize;
            rest >>= bits;
            // Later (more significant) entries of a split field extend the
            // accumulated value from the top, preserving LSB-first order.
            let slot = match field {
                Field::Channel => 0,
                Field::Rank => 1,
                Field::BankGroup => 2,
                Field::Bank => 3,
                Field::Row => 4,
                Field::Column => 5,
            };
            let shifted = val << seen[slot];
            seen[slot] += bits;
            match field {
                Field::Channel => out.channel |= shifted,
                Field::Rank => out.rank |= shifted,
                Field::BankGroup => out.bank_group |= shifted,
                Field::Bank => out.bank |= shifted,
                Field::Row => out.row |= shifted,
                Field::Column => out.column |= shifted,
            }
        }
        Ok(self.permute(out, geom))
    }

    /// Encode a DRAM coordinate back into a physical byte address
    /// (inverse of [`MappingScheme::decode`] for in-range coordinates).
    pub fn encode(&self, addr: &DramAddr, geom: &Geometry) -> u64 {
        let addr = &self.permute(*addr, geom);
        let mut out: u64 = 0;
        let mut shift: u32 = 0;
        let mut col_seen: u32 = 0;
        let mut chan_seen: u32 = 0;
        let mut rank_seen: u32 = 0;
        let mut bg_seen: u32 = 0;
        let mut bank_seen: u32 = 0;
        let mut row_seen: u32 = 0;
        for &(field, bits) in &self.fields {
            let (value, seen) = match field {
                Field::Channel => (addr.channel as u64, &mut chan_seen),
                Field::Rank => (addr.rank as u64, &mut rank_seen),
                Field::BankGroup => (addr.bank_group as u64, &mut bg_seen),
                Field::Bank => (addr.bank as u64, &mut bank_seen),
                Field::Row => (addr.row as u64, &mut row_seen),
                Field::Column => (addr.column as u64, &mut col_seen),
            };
            let chunk = (value >> *seen) & ((1u64 << bits) - 1);
            out |= chunk << shift;
            *seen += bits;
            shift += bits;
        }
        out * ACCESS_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Geometry;

    fn geom() -> Geometry {
        Geometry {
            channels: 2,
            ranks_per_channel: 4,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 1 << 15,
            columns: 128,
            bus_bytes: 8,
        }
    }

    #[test]
    fn presets_validate() {
        let g = geom();
        MappingScheme::rank_interleaved(&g).validate(&g).unwrap();
        MappingScheme::channel_interleaved(&g).validate(&g).unwrap();
        MappingScheme::vector_per_rank(&g).validate(&g).unwrap();
        MappingScheme::nmp_local(&g).validate(&g).unwrap();
    }

    #[test]
    fn nmp_local_alternates_bank_groups() {
        let g = geom();
        let m = MappingScheme::nmp_local(&g);
        for i in 0..8u64 {
            let d = m.decode(i * 64, &g).unwrap();
            assert_eq!(d.bank_group, (i % 4) as usize, "block {i}");
            assert_eq!(d.rank, 0);
        }
    }

    #[test]
    fn rank_interleaved_strides_ranks() {
        let g = geom();
        let m = MappingScheme::rank_interleaved(&g);
        for i in 0..8u64 {
            let d = m.decode(i * 64, &g).unwrap();
            assert_eq!(d.rank, (i % 4) as usize, "block {i}");
        }
    }

    #[test]
    fn channel_interleaved_strides_channels() {
        let g = geom();
        let m = MappingScheme::channel_interleaved(&g);
        for i in 0..4u64 {
            let d = m.decode(i * 64, &g).unwrap();
            assert_eq!(d.channel, (i % 2) as usize, "block {i}");
        }
    }

    #[test]
    fn vector_per_rank_keeps_low_addresses_in_rank_zero() {
        let g = geom();
        let m = MappingScheme::vector_per_rank(&g);
        // A full row's worth of consecutive blocks stays in rank 0.
        for i in 0..128u64 {
            let d = m.decode(i * 64, &g).unwrap();
            assert_eq!(d.rank, 0);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let g = geom();
        let m = MappingScheme::rank_interleaved(&g);
        let cap = g.capacity_bytes();
        assert!(matches!(
            m.decode(cap, &g),
            Err(DramError::AddressOutOfRange { .. })
        ));
        assert!(m.decode(cap - 64, &g).is_ok());
    }

    #[test]
    fn mismatched_mapping_detected() {
        let g = geom();
        let m = MappingScheme::from_fields(vec![(Field::Row, 3)]);
        assert!(matches!(
            m.validate(&g),
            Err(DramError::MappingMismatch { .. })
        ));
    }

    #[test]
    fn decode_encode_roundtrip_all_mappings() {
        let g = geom();
        for m in [
            MappingScheme::rank_interleaved(&g),
            MappingScheme::channel_interleaved(&g),
            MappingScheme::vector_per_rank(&g),
        ] {
            for addr in (0..1u64 << 20).step_by(64 * 97) {
                let d = m.decode(addr, &g).unwrap();
                assert_eq!(m.encode(&d, &g), addr, "mapping {m:?} addr {addr}");
            }
        }
    }
}
