//! Cycle-level DDR4 DRAM simulator.
//!
//! This crate is the memory-system substrate of the TensorDIMM reproduction
//! (MICRO-52, 2019). The paper evaluates DRAM bandwidth utilization of its
//! near-memory tensor operations with Ramulator; since no such simulator is
//! available here, this crate rebuilds the relevant abstraction level from
//! scratch:
//!
//! * a timing-constraint engine for DDR4 commands (activate / precharge /
//!   read / write / refresh) over channels, ranks, bank groups and banks
//!   ([`timing::DramTiming`], [`bank`], [`channel`]),
//! * a per-channel memory controller with FR-FCFS or FCFS scheduling,
//!   open- or closed-page row policies and watermark-based write draining
//!   ([`controller::MemoryController`]),
//! * a multi-channel front end with configurable physical-to-DRAM address
//!   mapping ([`system::MemorySystem`], [`address::MappingScheme`]),
//! * trace replay helpers and detailed statistics ([`trace`], [`stats`]).
//!
//! The model is deliberately Ramulator-like: commands are issued at cycle
//! granularity subject to JEDEC timing constraints, and achieved bandwidth is
//! measured from data-bus occupancy.
//!
//! # Example
//!
//! Stream sequential reads through a single DDR4-3200 channel and confirm the
//! achieved bandwidth approaches the 25.6 GB/s channel peak:
//!
//! ```
//! use tensordimm_dram::{DramConfig, MemorySystem, Request};
//!
//! let config = DramConfig::ddr4_3200_channel();
//! let mut mem = MemorySystem::new(config)?;
//! for i in 0..4096u64 {
//!     mem.push_when_ready(Request::read(i * 64));
//! }
//! mem.run_to_completion();
//! let stats = mem.stats();
//! assert!(stats.achieved_gbps() > 20.0, "got {}", stats.achieved_gbps());
//! # Ok::<(), tensordimm_dram::DramError>(())
//! ```

pub mod address;
pub mod bank;
pub mod channel;
pub mod command;
pub mod config;
pub mod controller;
pub mod energy;
pub mod request;
pub mod stats;
pub mod system;
pub mod timing;
pub mod trace;

pub use address::{DramAddr, Field, MappingScheme};
pub use command::DramCommand;
pub use config::{DramConfig, RowPolicy, SchedulerKind};
pub use controller::MemoryController;
pub use energy::{EnergyModel, EnergyReport};
pub use request::{Completion, Request, RequestKind};
pub use stats::{ChannelStats, MemoryStats};
pub use system::MemorySystem;
pub use timing::DramTiming;
pub use trace::{Trace, TraceEntry, TraceRunner};

use std::error::Error;
use std::fmt;

/// Errors reported by the DRAM simulator.
///
/// Construction-time validation ([`DramConfig::validate`]) catches geometry
/// and mapping mistakes before any simulation runs; runtime methods are
/// infallible once a configuration validates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// The address mapping does not cover the configured geometry.
    MappingMismatch {
        /// Field whose bit count disagrees with the geometry.
        field: Field,
        /// Bits the mapping provides for the field.
        mapped_bits: u32,
        /// Bits the geometry requires for the field.
        required_bits: u32,
    },
    /// A geometry parameter is zero or not a power of two.
    InvalidGeometry {
        /// Human-readable name of the offending parameter.
        parameter: &'static str,
        /// The rejected value.
        value: usize,
    },
    /// A timing parameter combination is inconsistent.
    InvalidTiming {
        /// Human-readable description of the inconsistency.
        reason: &'static str,
    },
    /// An address decodes outside the configured capacity.
    AddressOutOfRange {
        /// The rejected physical address.
        addr: u64,
        /// Total configured capacity in bytes.
        capacity: u64,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::MappingMismatch {
                field,
                mapped_bits,
                required_bits,
            } => write!(
                f,
                "address mapping provides {mapped_bits} bits for {field:?} \
                 but the geometry requires {required_bits}"
            ),
            DramError::InvalidGeometry { parameter, value } => write!(
                f,
                "geometry parameter {parameter} = {value} must be a nonzero power of two"
            ),
            DramError::InvalidTiming { reason } => {
                write!(f, "inconsistent timing parameters: {reason}")
            }
            DramError::AddressOutOfRange { addr, capacity } => write!(
                f,
                "address {addr:#x} is outside the configured capacity of {capacity} bytes"
            ),
        }
    }
}

impl Error for DramError {}

/// Granularity of a single burst access: 64 bytes (x64 bus, BL8).
pub const ACCESS_BYTES: u64 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = DramError::InvalidGeometry {
            parameter: "rows",
            value: 3,
        };
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
