//! Simulation statistics.

use crate::timing::DramTiming;

/// Counters collected by one channel's controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Read requests completed.
    pub reads: u64,
    /// Write requests completed.
    pub writes: u64,
    /// Data-bus cycles occupied by bursts.
    pub bus_busy_cycles: u64,
    /// Column accesses that hit an open row.
    pub row_hits: u64,
    /// Column accesses to a closed bank (activate required).
    pub row_misses: u64,
    /// Column accesses that required closing another row first.
    pub row_conflicts: u64,
    /// ACTIVATE commands issued.
    pub activates: u64,
    /// PRECHARGE commands issued (including auto-precharge).
    pub precharges: u64,
    /// REFRESH commands issued.
    pub refreshes: u64,
    /// Sum of read latencies (enqueue to data) in cycles.
    pub read_latency_sum: u64,
    /// Cycles during which at least one request was queued.
    pub busy_cycles: u64,
}

impl ChannelStats {
    /// Accumulate another channel's counters into this one.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.reads += other.reads;
        self.writes += other.writes;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.read_latency_sum += other.read_latency_sum;
        self.busy_cycles += other.busy_cycles;
    }

    /// Fraction of column accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean read latency in cycles.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads as f64
        }
    }
}

/// Aggregated statistics for a whole [`crate::MemorySystem`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryStats {
    /// Per-channel counters, merged.
    pub totals: ChannelStats,
    /// Number of channels contributing.
    pub channels: usize,
    /// Timing used, for unit conversion.
    pub timing: DramTiming,
    /// Bus width in bytes.
    pub bus_bytes: usize,
}

impl MemoryStats {
    /// Total bytes transferred over all data buses.
    pub fn bytes_transferred(&self) -> u64 {
        (self.totals.reads + self.totals.writes) * crate::ACCESS_BYTES
    }

    /// Achieved bandwidth in GB/s over the simulated interval.
    ///
    /// Uses wall-clock cycles of the slowest channel, matching how a
    /// fixed-length trace replay would be measured on hardware.
    pub fn achieved_gbps(&self) -> f64 {
        if self.totals.cycles == 0 {
            return 0.0;
        }
        let seconds = self.totals.cycles as f64 * self.timing.ns_per_cycle() * 1e-9;
        self.bytes_transferred() as f64 / 1e9 / seconds
    }

    /// Theoretical peak bandwidth in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.timing.peak_gbps(self.bus_bytes as u64) * self.channels as f64
    }

    /// Achieved / peak bandwidth, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let peak = self.peak_gbps();
        if peak == 0.0 {
            0.0
        } else {
            self.achieved_gbps() / peak
        }
    }

    /// Elapsed simulated time in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.totals.cycles as f64 * self.timing.ns_per_cycle()
    }

    /// Fraction of column accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        self.totals.row_hit_rate()
    }

    /// Mean read latency in nanoseconds.
    pub fn mean_read_latency_ns(&self) -> f64 {
        self.totals.mean_read_latency() * self.timing.ns_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(reads: u64, writes: u64, cycles: u64) -> MemoryStats {
        MemoryStats {
            totals: ChannelStats {
                cycles,
                reads,
                writes,
                ..ChannelStats::default()
            },
            channels: 1,
            timing: DramTiming::ddr4_3200(),
            bus_bytes: 8,
        }
    }

    #[test]
    fn bandwidth_math() {
        // 1600 requests x 64 B in 6400 cycles @0.625 ns = 25.6 GB/s (peak).
        let s = stats(1600, 0, 6400);
        assert!((s.achieved_gbps() - 25.6).abs() < 1e-9);
        assert!((s.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = stats(0, 0, 0);
        assert_eq!(s.achieved_gbps(), 0.0);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.mean_read_latency_ns(), 0.0);
    }

    #[test]
    fn merge_takes_max_cycles_and_sums_counts() {
        let mut a = ChannelStats {
            cycles: 10,
            reads: 5,
            ..ChannelStats::default()
        };
        let b = ChannelStats {
            cycles: 20,
            reads: 7,
            row_hits: 3,
            ..ChannelStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.reads, 12);
        assert_eq!(a.row_hits, 3);
    }

    #[test]
    fn hit_rate() {
        let s = ChannelStats {
            row_hits: 3,
            row_misses: 1,
            ..ChannelStats::default()
        };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }
}
