//! DDR4 timing parameters.
//!
//! All values are expressed in memory-controller clock cycles. For DDR4 the
//! controller clock equals the I/O bus clock (half the data rate), so a
//! DDR4-3200 part runs the controller at 1600 MHz and a BL8 burst occupies
//! `BL/2 = 4` cycles on the data bus.

/// JEDEC DDR4 timing parameters in controller clock cycles.
///
/// The presets ([`DramTiming::ddr4_3200`] and friends) follow the common
/// speed-bin datasheet values for 8 Gb x8 devices with a 1 KB page; exact
/// vendor bins differ by a cycle or two, which is irrelevant at the
/// bandwidth-shape level this simulator targets.
///
/// # Example
///
/// ```
/// use tensordimm_dram::DramTiming;
///
/// let t = DramTiming::ddr4_3200();
/// assert_eq!(t.clock_mhz, 1600);
/// assert_eq!(t.trc(), t.tras + t.trp);
/// assert!((t.peak_gbps(8) - 25.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramTiming {
    /// Controller / bus clock in MHz (data rate is twice this).
    pub clock_mhz: u64,
    /// CAS latency (READ command to first data).
    pub cl: u64,
    /// CAS write latency (WRITE command to first data).
    pub cwl: u64,
    /// ACTIVATE to internal READ/WRITE delay.
    pub trcd: u64,
    /// PRECHARGE to ACTIVATE delay (same bank).
    pub trp: u64,
    /// ACTIVATE to PRECHARGE minimum (row active time).
    pub tras: u64,
    /// Burst length in beats (8 for DDR4).
    pub bl: u64,
    /// CAS-to-CAS delay, different bank group.
    pub tccd_s: u64,
    /// CAS-to-CAS delay, same bank group.
    pub tccd_l: u64,
    /// ACTIVATE-to-ACTIVATE delay, different bank group.
    pub trrd_s: u64,
    /// ACTIVATE-to-ACTIVATE delay, same bank group.
    pub trrd_l: u64,
    /// Four-activate window (per rank).
    pub tfaw: u64,
    /// Write recovery time (end of write burst to PRECHARGE).
    pub twr: u64,
    /// Write-to-read turnaround, different bank group.
    pub twtr_s: u64,
    /// Write-to-read turnaround, same bank group.
    pub twtr_l: u64,
    /// READ to PRECHARGE delay.
    pub trtp: u64,
    /// Average refresh interval.
    pub trefi: u64,
    /// Refresh cycle time (all-bank refresh duration).
    pub trfc: u64,
    /// Rank-to-rank switch penalty on the shared data bus.
    pub tcs: u64,
}

impl DramTiming {
    /// DDR4-3200 (PC4-25600): the configuration used throughout the paper
    /// (Table 1; 25.6 GB/s per DIMM).
    pub fn ddr4_3200() -> Self {
        DramTiming {
            clock_mhz: 1600,
            cl: 22,
            cwl: 16,
            trcd: 22,
            trp: 22,
            tras: 52,
            bl: 8,
            tccd_s: 4,
            tccd_l: 8,
            trrd_s: 4,
            trrd_l: 8,
            tfaw: 34,
            twr: 24,
            twtr_s: 4,
            twtr_l: 12,
            trtp: 12,
            trefi: 12480,
            trfc: 560,
            tcs: 2,
        }
    }

    /// DDR4-2666 (PC4-21300): 21.3 GB/s per DIMM.
    pub fn ddr4_2666() -> Self {
        DramTiming {
            clock_mhz: 1333,
            cl: 19,
            cwl: 14,
            trcd: 19,
            trp: 19,
            tras: 43,
            bl: 8,
            tccd_s: 4,
            tccd_l: 7,
            trrd_s: 4,
            trrd_l: 7,
            tfaw: 28,
            twr: 20,
            twtr_s: 4,
            twtr_l: 10,
            trtp: 10,
            trefi: 10400,
            trfc: 467,
            tcs: 2,
        }
    }

    /// DDR4-2400 (PC4-19200): 19.2 GB/s per DIMM.
    pub fn ddr4_2400() -> Self {
        DramTiming {
            clock_mhz: 1200,
            cl: 17,
            cwl: 12,
            trcd: 17,
            trp: 17,
            tras: 39,
            bl: 8,
            tccd_s: 4,
            tccd_l: 6,
            trrd_s: 4,
            trrd_l: 6,
            tfaw: 26,
            twr: 18,
            twtr_s: 3,
            twtr_l: 9,
            trtp: 9,
            trefi: 9360,
            trfc: 420,
            tcs: 2,
        }
    }

    /// Row cycle time: minimum spacing between ACTIVATEs to the same bank.
    pub fn trc(&self) -> u64 {
        self.tras + self.trp
    }

    /// Data-bus cycles occupied by a single burst (`BL/2`).
    pub fn burst_cycles(&self) -> u64 {
        self.bl / 2
    }

    /// Minimum READ-to-WRITE command spacing on the same channel.
    ///
    /// Derived from bus turnaround: `CL + BL/2 + 2 - CWL`.
    pub fn read_to_write(&self) -> u64 {
        (self.cl + self.burst_cycles() + 2).saturating_sub(self.cwl)
    }

    /// Minimum WRITE-to-READ spacing, same rank and same bank group.
    pub fn write_to_read_same_bg(&self) -> u64 {
        self.cwl + self.burst_cycles() + self.twtr_l
    }

    /// Minimum WRITE-to-READ spacing, same rank but different bank group.
    pub fn write_to_read_diff_bg(&self) -> u64 {
        self.cwl + self.burst_cycles() + self.twtr_s
    }

    /// Earliest PRECHARGE after a WRITE command (write recovery).
    pub fn write_to_precharge(&self) -> u64 {
        self.cwl + self.burst_cycles() + self.twr
    }

    /// Nanoseconds per controller clock cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1000.0 / self.clock_mhz as f64
    }

    /// Convert a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.ns_per_cycle()
    }

    /// Theoretical peak bandwidth in GB/s for a bus of `bus_bytes` width.
    ///
    /// DDR transfers two beats per clock: `bus_bytes * 2 * clock`.
    pub fn peak_gbps(&self, bus_bytes: u64) -> f64 {
        bus_bytes as f64 * 2.0 * self.clock_mhz as f64 * 1e6 / 1e9
    }

    /// Internal consistency check used by [`crate::DramConfig::validate`].
    pub(crate) fn validate(&self) -> Result<(), crate::DramError> {
        if self.clock_mhz == 0 {
            return Err(crate::DramError::InvalidTiming {
                reason: "clock frequency must be nonzero",
            });
        }
        if self.bl == 0 || !self.bl.is_multiple_of(2) {
            return Err(crate::DramError::InvalidTiming {
                reason: "burst length must be a nonzero multiple of two",
            });
        }
        if self.tras < self.trcd {
            return Err(crate::DramError::InvalidTiming {
                reason: "tRAS must be at least tRCD",
            });
        }
        if self.tccd_l < self.tccd_s || self.trrd_l < self.trrd_s {
            return Err(crate::DramError::InvalidTiming {
                reason: "same-bank-group delays must be at least the cross-group delays",
            });
        }
        if self.tfaw < self.trrd_s {
            return Err(crate::DramError::InvalidTiming {
                reason: "tFAW must be at least tRRD_S",
            });
        }
        if self.trefi <= self.trfc {
            return Err(crate::DramError::InvalidTiming {
                reason: "tREFI must exceed tRFC",
            });
        }
        Ok(())
    }
}

impl Default for DramTiming {
    /// Defaults to DDR4-3200, the paper's configuration.
    fn default() -> Self {
        DramTiming::ddr4_3200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DramTiming::ddr4_3200().validate().unwrap();
        DramTiming::ddr4_2666().validate().unwrap();
        DramTiming::ddr4_2400().validate().unwrap();
    }

    #[test]
    fn peak_bandwidth_matches_speed_grade() {
        assert!((DramTiming::ddr4_3200().peak_gbps(8) - 25.6).abs() < 1e-9);
        assert!((DramTiming::ddr4_2400().peak_gbps(8) - 19.2).abs() < 1e-9);
    }

    #[test]
    fn derived_values() {
        let t = DramTiming::ddr4_3200();
        assert_eq!(t.trc(), 74);
        assert_eq!(t.burst_cycles(), 4);
        assert_eq!(t.read_to_write(), 12);
        assert_eq!(t.write_to_read_same_bg(), 16 + 4 + 12);
        assert!((t.ns_per_cycle() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn invalid_timing_detected() {
        let mut t = DramTiming::ddr4_3200();
        t.tras = 1;
        assert!(t.validate().is_err());

        let mut t = DramTiming::ddr4_3200();
        t.bl = 3;
        assert!(t.validate().is_err());

        let mut t = DramTiming::ddr4_3200();
        t.trefi = t.trfc;
        assert!(t.validate().is_err());
    }

    #[test]
    fn default_is_3200() {
        assert_eq!(DramTiming::default(), DramTiming::ddr4_3200());
    }
}
