//! Memory requests and completions.

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// 64-byte read burst.
    Read,
    /// 64-byte write burst.
    Write,
}

/// A 64-byte memory request presented to the memory system.
///
/// The simulator is timing-only; the data payload lives in the functional
/// layers above (the embedding store and the NMP core's functional model).
///
/// # Example
///
/// ```
/// use tensordimm_dram::{Request, RequestKind};
///
/// let r = Request::read(0x40).with_id(7);
/// assert_eq!(r.kind, RequestKind::Read);
/// assert_eq!(r.addr, 0x40);
/// assert_eq!(r.id, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Physical byte address (64-byte aligned; low bits are ignored).
    pub addr: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Caller-assigned identifier, echoed in the completion record.
    pub id: u64,
}

impl Request {
    /// A read of the 64-byte block containing `addr`.
    pub fn read(addr: u64) -> Self {
        Request {
            addr,
            kind: RequestKind::Read,
            id: 0,
        }
    }

    /// A write of the 64-byte block containing `addr`.
    pub fn write(addr: u64) -> Self {
        Request {
            addr,
            kind: RequestKind::Write,
            id: 0,
        }
    }

    /// Attach a caller-assigned identifier.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }
}

/// A serviced request, reported by the memory system when its data burst
/// completes (reads) or when it is accepted into DRAM (writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The original request.
    pub request: Request,
    /// Cycle the request entered the controller queue.
    pub enqueued_at: u64,
    /// Cycle the data transfer finished.
    pub finished_at: u64,
}

impl Completion {
    /// Queueing + service latency in controller cycles.
    pub fn latency(&self) -> u64 {
        self.finished_at - self.enqueued_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Request::write(128).kind, RequestKind::Write);
        assert_eq!(Request::read(0).id, 0);
    }

    #[test]
    fn completion_latency() {
        let c = Completion {
            request: Request::read(0),
            enqueued_at: 10,
            finished_at: 42,
        };
        assert_eq!(c.latency(), 32);
    }
}
