//! System topology: which devices connect over which links.

use crate::link::Link;
use crate::InterconnectError;

/// A device in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// The host CPU (and its DDR4 memory).
    Cpu,
    /// A GPU, by index.
    Gpu(usize),
    /// The TensorDIMM-based disaggregated memory node.
    TensorNode,
}

/// A DGX-like topology: GPUs and the TensorNode hang off an NVSwitch
/// crossbar; the CPU reaches each GPU over PCIe. This is Fig. 6(c).
///
/// Routing rules (matching the paper's system):
/// * CPU ↔ GPU: PCIe.
/// * GPU ↔ GPU and GPU ↔ TensorNode: NVLINK through NVSwitch (the switch is
///   non-blocking, so a single transfer sees the full per-device NVLINK
///   bandwidth).
/// * CPU ↔ TensorNode: PCIe to a GPU then NVLINK (staged; used only by
///   loading paths, never on the inference critical path).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    gpus: usize,
    pcie: Link,
    nvlink: Link,
}

impl Topology {
    /// A DGX-like box with `gpus` V100-class devices, PCIe 3.0 x16 to the
    /// host and six NVLINK v2 bricks per device.
    pub fn dgx_like(gpus: usize) -> Self {
        Topology {
            gpus,
            pcie: Link::pcie3_x16(),
            nvlink: Link::nvlink2_x6(),
        }
    }

    /// Replace the GPU-side link (the Fig. 16 sensitivity knob).
    pub fn with_gpu_link(mut self, link: Link) -> Self {
        self.nvlink = link;
        self
    }

    /// Replace the host link.
    pub fn with_host_link(mut self, link: Link) -> Self {
        self.pcie = link;
        self
    }

    /// Number of GPUs.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// The host (PCIe) link.
    pub fn host_link(&self) -> &Link {
        &self.pcie
    }

    /// The GPU-side (NVLINK) link.
    pub fn gpu_link(&self) -> &Link {
        &self.nvlink
    }

    fn check_gpu(&self, d: Device) -> Result<(), InterconnectError> {
        if let Device::Gpu(i) = d {
            if i >= self.gpus {
                return Err(InterconnectError::UnknownGpu {
                    index: i,
                    gpus: self.gpus,
                });
            }
        }
        Ok(())
    }

    /// The links a transfer crosses, in order.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::UnknownGpu`] for out-of-range GPU
    /// indices and [`InterconnectError::NoRoute`] for degenerate routes
    /// (same endpoint on both sides).
    pub fn route(&self, from: Device, to: Device) -> Result<Vec<&Link>, InterconnectError> {
        self.check_gpu(from)?;
        self.check_gpu(to)?;
        use Device::*;
        match (from, to) {
            (Cpu, Gpu(_)) | (Gpu(_), Cpu) => Ok(vec![&self.pcie]),
            (Gpu(a), Gpu(b)) if a != b => Ok(vec![&self.nvlink]),
            (TensorNode, Gpu(_)) | (Gpu(_), TensorNode) => Ok(vec![&self.nvlink]),
            (Cpu, TensorNode) | (TensorNode, Cpu) => Ok(vec![&self.pcie, &self.nvlink]),
            (a, b) => Err(InterconnectError::NoRoute { from: a, to: b }),
        }
    }

    /// Modeled transfer time in microseconds for `bytes` along the route.
    ///
    /// Staged routes sum per-hop times (store-and-forward, conservative).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::route`].
    pub fn transfer_time_us(
        &self,
        from: Device,
        to: Device,
        bytes: u64,
    ) -> Result<f64, InterconnectError> {
        Ok(self
            .route(from, to)?
            .iter()
            .map(|l| l.transfer_time_us(bytes))
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes() {
        let t = Topology::dgx_like(8);
        assert_eq!(t.route(Device::Cpu, Device::Gpu(0)).unwrap().len(), 1);
        assert_eq!(t.route(Device::Gpu(0), Device::Gpu(1)).unwrap().len(), 1);
        assert_eq!(
            t.route(Device::TensorNode, Device::Gpu(3)).unwrap().len(),
            1
        );
        assert_eq!(t.route(Device::Cpu, Device::TensorNode).unwrap().len(), 2);
        assert!(t.route(Device::Gpu(0), Device::Gpu(0)).is_err());
        assert!(t.route(Device::Cpu, Device::Cpu).is_err());
    }

    #[test]
    fn unknown_gpu() {
        let t = Topology::dgx_like(2);
        assert!(matches!(
            t.route(Device::Cpu, Device::Gpu(2)),
            Err(InterconnectError::UnknownGpu { .. })
        ));
    }

    #[test]
    fn nvlink_beats_pcie() {
        let t = Topology::dgx_like(8);
        let bytes = 64 << 20;
        let pcie = t
            .transfer_time_us(Device::Cpu, Device::Gpu(0), bytes)
            .unwrap();
        let nv = t
            .transfer_time_us(Device::TensorNode, Device::Gpu(0), bytes)
            .unwrap();
        assert!(pcie / nv > 8.0, "ratio {}", pcie / nv);
    }

    #[test]
    fn link_swap_for_sensitivity() {
        let slow = Topology::dgx_like(8).with_gpu_link(Link::nvlink_class(25.0).unwrap());
        let fast = Topology::dgx_like(8);
        let bytes = 1 << 20;
        let s = slow
            .transfer_time_us(Device::TensorNode, Device::Gpu(0), bytes)
            .unwrap();
        let f = fast
            .transfer_time_us(Device::TensorNode, Device::Gpu(0), bytes)
            .unwrap();
        assert!(s > 2.0 * f);
    }

    #[test]
    fn staged_route_sums() {
        let t = Topology::dgx_like(1);
        let bytes = 1 << 20;
        let direct = t
            .transfer_time_us(Device::Cpu, Device::Gpu(0), bytes)
            .unwrap();
        let staged = t
            .transfer_time_us(Device::Cpu, Device::TensorNode, bytes)
            .unwrap();
        assert!(staged > direct);
    }
}

#[cfg(test)]
mod accessor_tests {
    use super::*;

    #[test]
    fn accessors_expose_links() {
        let t = Topology::dgx_like(4).with_host_link(Link::nvlink2_x1());
        assert_eq!(t.gpus(), 4);
        assert_eq!(t.host_link().bandwidth_gbps(), 25.0);
        assert_eq!(t.gpu_link().bandwidth_gbps(), 150.0);
    }

    #[test]
    fn transfer_scales_linearly_past_setup() {
        let t = Topology::dgx_like(2);
        let small = t
            .transfer_time_us(Device::TensorNode, Device::Gpu(0), 1 << 20)
            .unwrap();
        let big = t
            .transfer_time_us(Device::TensorNode, Device::Gpu(0), 1 << 24)
            .unwrap();
        let setup = t.gpu_link().setup_us();
        assert!(((big - setup) / (small - setup) - 16.0).abs() < 0.1);
    }
}
