//! System-interconnect models: PCIe, NVLINK and NVSwitch.
//!
//! The paper's system-level argument (Sections 2.2, 4.3) is that the
//! GPU-side interconnect (NVLINK v2 through NVSwitch, 150 GB/s per device)
//! is ~9× faster than the host PCIe 3.0 x16 link (16 GB/s), so a memory
//! pool attached *inside* the GPU interconnect moves embeddings an order of
//! magnitude faster than CPU-resident embeddings crossing PCIe.
//!
//! The real hardware is unavailable; these latency/bandwidth models carry
//! the same published constants and reproduce transfer times as
//! `setup latency + bytes / effective bandwidth`.
//!
//! # Example
//!
//! ```
//! use tensordimm_interconnect::{Link, Topology, Device};
//!
//! let topo = Topology::dgx_like(8);
//! let t_pcie = topo.transfer_time_us(Device::Cpu, Device::Gpu(0), 1 << 20)?;
//! let t_nvlink = topo.transfer_time_us(Device::TensorNode, Device::Gpu(0), 1 << 20)?;
//! assert!(t_pcie > 5.0 * t_nvlink, "pcie {t_pcie} vs nvlink {t_nvlink}");
//! # Ok::<(), tensordimm_interconnect::InterconnectError>(())
//! ```

pub mod fabric;
pub mod link;
pub mod switch;
pub mod topology;

pub use fabric::{Fabric, FabricTopology, LinkId, TopologyKind};
pub use link::{Link, TransferReport};
pub use switch::{Flow, Switch};
pub use topology::{Device, Topology};

use std::error::Error;
use std::fmt;

/// Errors from the interconnect model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InterconnectError {
    /// No route exists between the two devices.
    NoRoute {
        /// Source device.
        from: Device,
        /// Destination device.
        to: Device,
    },
    /// A GPU index exceeds the topology's GPU count.
    UnknownGpu {
        /// The requested GPU index.
        index: usize,
        /// GPUs present.
        gpus: usize,
    },
    /// A link parameter is non-positive.
    InvalidLink {
        /// Which parameter.
        parameter: &'static str,
    },
    /// A fabric node index exceeds the topology's node count.
    UnknownNode {
        /// The requested node index.
        index: usize,
        /// Nodes present.
        nodes: usize,
    },
}

impl fmt::Display for InterconnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterconnectError::NoRoute { from, to } => {
                write!(f, "no route from {from:?} to {to:?}")
            }
            InterconnectError::UnknownGpu { index, gpus } => {
                write!(f, "gpu {index} does not exist (topology has {gpus})")
            }
            InterconnectError::InvalidLink { parameter } => {
                write!(f, "link parameter {parameter} must be positive")
            }
            InterconnectError::UnknownNode { index, nodes } => {
                write!(f, "node {index} does not exist (fabric has {nodes})")
            }
        }
    }
}

impl Error for InterconnectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = InterconnectError::NoRoute {
            from: Device::Cpu,
            to: Device::TensorNode,
        };
        assert!(!e.to_string().is_empty());
        assert!(!InterconnectError::UnknownGpu { index: 9, gpus: 8 }
            .to_string()
            .is_empty());
    }
}
