//! NVSwitch-style crossbar with port contention.
//!
//! The paper's TensorNode hangs off an NVSwitch (Fig. 6c), which is
//! non-blocking: distinct port pairs communicate at full link bandwidth.
//! Contention appears only at shared endpoints — e.g. several GPUs pulling
//! pooled tensors from the *one* TensorNode port at once. This module
//! models that effect with max-min fair sharing of per-port bandwidth, the
//! standard abstraction for crossbar fabrics.

use crate::link::Link;
use crate::InterconnectError;

/// One transfer request across the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Source port index.
    pub from: usize,
    /// Destination port index.
    pub to: usize,
    /// Payload bytes.
    pub bytes: u64,
}

/// A non-blocking crossbar switch with `ports` identical full-duplex ports.
///
/// # Example
///
/// Two GPUs reading from the TensorNode port halve each other's bandwidth;
/// a third flow between unrelated ports is unaffected:
///
/// ```
/// use tensordimm_interconnect::{Link, Switch, Flow};
///
/// let sw = Switch::new(8, Link::nvlink2_x6())?;
/// let times = sw.concurrent_transfer_us(&[
///     Flow { from: 0, to: 1, bytes: 1 << 30 }, // node -> GPU A
///     Flow { from: 0, to: 2, bytes: 1 << 30 }, // node -> GPU B
///     Flow { from: 3, to: 4, bytes: 1 << 30 }, // GPU C -> GPU D
/// ])?;
/// assert!(times[0] > 1.9 * times[2] && times[0] < 2.1 * times[2]);
/// # Ok::<(), tensordimm_interconnect::InterconnectError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Switch {
    ports: usize,
    link: Link,
}

impl Switch {
    /// A switch with `ports` ports of `link` bandwidth each.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] for a zero-port switch.
    pub fn new(ports: usize, link: Link) -> Result<Self, InterconnectError> {
        if ports == 0 {
            return Err(InterconnectError::InvalidLink { parameter: "ports" });
        }
        Ok(Switch { ports, link })
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The per-port link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Completion time (µs) of each flow when all run concurrently, under
    /// max-min fair sharing of source (egress) and destination (ingress)
    /// port bandwidth. Flows are modeled as fluid: rates are recomputed as
    /// flows finish.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::UnknownGpu`] if a flow names a port
    /// beyond `ports`.
    pub fn concurrent_transfer_us(&self, flows: &[Flow]) -> Result<Vec<f64>, InterconnectError> {
        for f in flows {
            for p in [f.from, f.to] {
                if p >= self.ports {
                    return Err(InterconnectError::UnknownGpu {
                        index: p,
                        gpus: self.ports,
                    });
                }
            }
        }
        let cap = self.link.effective_gbps() * 1e3; // bytes per µs
        let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes as f64).collect();
        let mut finish = vec![0.0f64; flows.len()];
        let mut now = self.link.setup_us();
        let mut active: Vec<usize> = (0..flows.len()).collect();

        while !active.is_empty() {
            // Max-min fair rates: iteratively saturate the tightest port.
            let mut rate = vec![0.0f64; flows.len()];
            let mut frozen = vec![false; flows.len()];
            loop {
                // Residual capacity and unfrozen degree per port.
                let mut residual = vec![cap; self.ports];
                let mut degree = vec![0usize; self.ports];
                for &i in &active {
                    // A self-loop (loopback through the crossbar) occupies
                    // its port once, not twice — charging both the egress
                    // and ingress side of the same port would halve a lone
                    // loopback's bandwidth for no physical reason.
                    if frozen[i] {
                        residual[flows[i].from] -= rate[i];
                        if flows[i].to != flows[i].from {
                            residual[flows[i].to] -= rate[i];
                        }
                    } else {
                        degree[flows[i].from] += 1;
                        if flows[i].to != flows[i].from {
                            degree[flows[i].to] += 1;
                        }
                    }
                }
                let bottleneck = (0..self.ports)
                    .filter(|&p| degree[p] > 0)
                    .map(|p| (residual[p] / degree[p] as f64, p))
                    .min_by(|a, b| a.0.total_cmp(&b.0));
                let Some((share, port)) = bottleneck else {
                    break;
                };
                let mut changed = false;
                for &i in &active {
                    if !frozen[i] && (flows[i].from == port || flows[i].to == port) {
                        rate[i] = share;
                        frozen[i] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            // Advance to the next completion.
            let (next_i, dt) = active
                .iter()
                .map(|&i| (i, remaining[i] / rate[i].max(1e-12)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("active is nonempty");
            now += dt;
            for &i in &active {
                remaining[i] -= rate[i] * dt;
            }
            finish[next_i] = now;
            remaining[next_i] = 0.0;
            active.retain(|&i| i != next_i);
        }
        Ok(finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw() -> Switch {
        Switch::new(8, Link::nvlink2_x6()).expect("nonzero ports")
    }

    #[test]
    fn single_flow_matches_link_model() {
        let s = sw();
        let t = s
            .concurrent_transfer_us(&[Flow {
                from: 0,
                to: 1,
                bytes: 1 << 20,
            }])
            .expect("ports in range");
        let direct = Link::nvlink2_x6().transfer_time_us(1 << 20);
        assert!((t[0] - direct).abs() < 1e-6);
    }

    #[test]
    fn disjoint_flows_do_not_contend() {
        let s = sw();
        let t = s
            .concurrent_transfer_us(&[
                Flow {
                    from: 0,
                    to: 1,
                    bytes: 1 << 24,
                },
                Flow {
                    from: 2,
                    to: 3,
                    bytes: 1 << 24,
                },
                Flow {
                    from: 4,
                    to: 5,
                    bytes: 1 << 24,
                },
            ])
            .expect("ports in range");
        let solo = Link::nvlink2_x6().transfer_time_us(1 << 24);
        for x in t {
            assert!((x - solo).abs() / solo < 0.01, "{x} vs {solo}");
        }
    }

    #[test]
    fn shared_source_port_splits_bandwidth() {
        let s = sw();
        let t = s
            .concurrent_transfer_us(&[
                Flow {
                    from: 0,
                    to: 1,
                    bytes: 1 << 26,
                },
                Flow {
                    from: 0,
                    to: 2,
                    bytes: 1 << 26,
                },
                Flow {
                    from: 0,
                    to: 3,
                    bytes: 1 << 26,
                },
                Flow {
                    from: 0,
                    to: 4,
                    bytes: 1 << 26,
                },
            ])
            .expect("ports in range");
        let solo = Link::nvlink2_x6().transfer_time_us(1 << 26);
        // Four flows from one port: each takes ~4x as long.
        for x in &t {
            assert!(*x > 3.5 * solo && *x < 4.5 * solo, "{x} vs {solo}");
        }
    }

    #[test]
    fn finished_flows_release_bandwidth() {
        let s = sw();
        let t = s
            .concurrent_transfer_us(&[
                Flow {
                    from: 0,
                    to: 1,
                    bytes: 1 << 20,
                }, // small
                Flow {
                    from: 0,
                    to: 2,
                    bytes: 1 << 26,
                }, // large
            ])
            .expect("ports in range");
        let solo_large = Link::nvlink2_x6().transfer_time_us(1 << 26);
        // The large flow runs at half rate only while the small one lives.
        assert!(t[1] < 1.2 * solo_large, "{} vs {}", t[1], solo_large);
        assert!(t[0] < t[1]);
    }

    /// Regression: a self-loop used to add port `p` to its own degree and
    /// residual twice, so a *lone* loopback flow ran at half the link
    /// bandwidth. The semantic pinned here: a loopback occupies its port
    /// once and completes exactly like any other single flow.
    #[test]
    fn lone_self_loop_runs_at_full_bandwidth() {
        let s = sw();
        let t = s
            .concurrent_transfer_us(&[Flow {
                from: 3,
                to: 3,
                bytes: 1 << 26,
            }])
            .expect("ports in range");
        let solo = Link::nvlink2_x6().transfer_time_us(1 << 26);
        assert!(
            (t[0] - solo).abs() / solo < 1e-9,
            "self-loop {} vs solo {solo}",
            t[0]
        );
    }

    /// A self-loop still contends like one flow with other users of its
    /// port: loopback + one incoming flow split port 3 evenly.
    #[test]
    fn self_loop_contends_once_with_port_sharers() {
        let s = sw();
        let t = s
            .concurrent_transfer_us(&[
                Flow {
                    from: 3,
                    to: 3,
                    bytes: 1 << 26,
                },
                Flow {
                    from: 0,
                    to: 3,
                    bytes: 1 << 26,
                },
            ])
            .expect("ports in range");
        let solo = Link::nvlink2_x6().transfer_time_us(1 << 26);
        for x in &t {
            assert!(*x > 1.9 * solo && *x < 2.1 * solo, "{x} vs solo {solo}");
        }
    }

    #[test]
    fn bad_port_rejected() {
        let s = sw();
        assert!(s
            .concurrent_transfer_us(&[Flow {
                from: 0,
                to: 8,
                bytes: 64
            }])
            .is_err());
        assert!(Switch::new(0, Link::nvlink2_x6()).is_err());
    }

    #[test]
    fn empty_flow_set() {
        assert!(sw()
            .concurrent_transfer_us(&[])
            .expect("trivially ok")
            .is_empty());
    }
}
