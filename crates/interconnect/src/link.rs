//! Point-to-point link models.

use crate::InterconnectError;

/// A point-to-point communication link.
///
/// Transfer time is `setup_us + bytes / (bandwidth * efficiency)` — the
/// standard latency-bandwidth (alpha-beta) model. Setup latency covers
/// driver/DMA initiation (the `cudaMemcpy` fixed cost that makes small
/// PCIe transfers so expensive at low batch sizes).
///
/// # Example
///
/// ```
/// use tensordimm_interconnect::Link;
///
/// let pcie = Link::pcie3_x16();
/// let nvlink = Link::nvlink2_x6();
/// // The paper's ~9x claim: NVLINK moves large payloads ~9x faster.
/// let ratio = pcie.transfer_time_us(1 << 30) / nvlink.transfer_time_us(1 << 30);
/// assert!(ratio > 8.0 && ratio < 11.0, "ratio {ratio}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    name: &'static str,
    bandwidth_gbps: f64,
    efficiency: f64,
    setup_us: f64,
}

impl Link {
    /// A custom link.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] for non-positive or
    /// non-finite bandwidth, efficiency, or setup latency. Finiteness
    /// matters: NaN slips through every ordering comparison (all are
    /// false), and a NaN parameter would silently poison every transfer
    /// time computed downstream.
    pub fn new(
        name: &'static str,
        bandwidth_gbps: f64,
        efficiency: f64,
        setup_us: f64,
    ) -> Result<Self, InterconnectError> {
        if !bandwidth_gbps.is_finite() || bandwidth_gbps <= 0.0 {
            return Err(InterconnectError::InvalidLink {
                parameter: "bandwidth_gbps",
            });
        }
        if !efficiency.is_finite() || efficiency <= 0.0 || efficiency > 1.0 {
            return Err(InterconnectError::InvalidLink {
                parameter: "efficiency",
            });
        }
        if !setup_us.is_finite() || setup_us < 0.0 {
            return Err(InterconnectError::InvalidLink {
                parameter: "setup_us",
            });
        }
        Ok(Link {
            name,
            bandwidth_gbps,
            efficiency,
            setup_us,
        })
    }

    /// PCIe 3.0 x16: 16 GB/s unidirectional (Section 2.2), ~80% protocol
    /// efficiency, ~10 µs `cudaMemcpy` initiation cost.
    pub fn pcie3_x16() -> Self {
        Link {
            name: "PCIe3 x16",
            bandwidth_gbps: 16.0,
            efficiency: 0.8,
            setup_us: 10.0,
        }
    }

    /// One NVLINK v2 brick: 25 GB/s unidirectional per direction.
    pub fn nvlink2_x1() -> Self {
        Link {
            name: "NVLINK2 x1",
            bandwidth_gbps: 25.0,
            efficiency: 0.9,
            setup_us: 5.0,
        }
    }

    /// Six NVLINK v2 bricks (a V100's full complement): 150 GB/s.
    pub fn nvlink2_x6() -> Self {
        Link {
            name: "NVLINK2 x6",
            bandwidth_gbps: 150.0,
            efficiency: 0.9,
            setup_us: 5.0,
        }
    }

    /// A scaled NVLINK-class link of the given aggregate bandwidth —
    /// used by the Fig. 16 link-bandwidth sensitivity sweep
    /// (25 / 50 / 150 GB/s).
    pub fn nvlink_class(bandwidth_gbps: f64) -> Result<Self, InterconnectError> {
        Link::new("NVLINK class", bandwidth_gbps, 0.9, 5.0)
    }

    /// Link name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nominal unidirectional bandwidth, GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Effective bandwidth after protocol efficiency, GB/s.
    pub fn effective_gbps(&self) -> f64 {
        self.bandwidth_gbps * self.efficiency
    }

    /// Fixed per-transfer setup latency, µs.
    pub fn setup_us(&self) -> f64 {
        self.setup_us
    }

    /// Time to move `bytes`, in microseconds.
    pub fn transfer_time_us(&self, bytes: u64) -> f64 {
        self.setup_us + bytes as f64 / (self.effective_gbps() * 1e3)
    }

    /// Full transfer report.
    pub fn transfer(&self, bytes: u64) -> TransferReport {
        let time_us = self.transfer_time_us(bytes);
        TransferReport {
            bytes,
            time_us,
            achieved_gbps: if time_us > 0.0 {
                bytes as f64 / (time_us * 1e3)
            } else {
                0.0
            },
        }
    }
}

/// Result of a modeled transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferReport {
    /// Payload size.
    pub bytes: u64,
    /// Transfer time in microseconds.
    pub time_us: f64,
    /// Achieved bandwidth including setup cost, GB/s.
    pub achieved_gbps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_published_numbers() {
        assert_eq!(Link::pcie3_x16().bandwidth_gbps(), 16.0);
        assert_eq!(Link::nvlink2_x1().bandwidth_gbps(), 25.0);
        assert_eq!(Link::nvlink2_x6().bandwidth_gbps(), 150.0);
    }

    #[test]
    fn alpha_beta_model() {
        let l = Link::new("test", 10.0, 1.0, 2.0).unwrap();
        // 10 GB/s = 10 KB/us: 100 KB takes 10 us + 2 us setup.
        assert!((l.transfer_time_us(100_000) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn small_transfers_are_latency_bound() {
        let l = Link::pcie3_x16();
        let small = l.transfer(64);
        let big = l.transfer(1 << 30);
        assert!(small.achieved_gbps < 0.1);
        assert!(big.achieved_gbps > 10.0);
    }

    #[test]
    fn invalid_links_rejected() {
        assert!(Link::new("x", 0.0, 0.5, 0.0).is_err());
        assert!(Link::new("x", 1.0, 0.0, 0.0).is_err());
        assert!(Link::new("x", 1.0, 1.5, 0.0).is_err());
        assert!(Link::new("x", 1.0, 1.0, -1.0).is_err());
    }

    /// Regression: NaN passes every ordering comparison (`NaN <= 0.0` is
    /// false), so pre-fix `Link::new` accepted NaN parameters and produced
    /// NaN transfer times everywhere downstream. Infinities likewise.
    #[test]
    fn non_finite_links_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Link::new("x", bad, 0.9, 5.0).is_err(), "bandwidth {bad}");
            assert!(Link::new("x", 25.0, bad, 5.0).is_err(), "efficiency {bad}");
            assert!(Link::new("x", 25.0, 0.9, bad).is_err(), "setup {bad}");
            assert!(Link::nvlink_class(bad).is_err(), "nvlink_class {bad}");
        }
        let parameter = |l: Result<Link, InterconnectError>| match l {
            Err(InterconnectError::InvalidLink { parameter }) => parameter,
            other => panic!("expected InvalidLink, got {other:?}"),
        };
        assert_eq!(
            parameter(Link::new("x", f64::NAN, 0.9, 5.0)),
            "bandwidth_gbps"
        );
        assert_eq!(parameter(Link::new("x", 25.0, f64::NAN, 5.0)), "efficiency");
        assert_eq!(parameter(Link::new("x", 25.0, 0.9, f64::NAN)), "setup_us");
    }

    #[test]
    fn nvlink_class_sweep_points() {
        for bw in [25.0, 50.0, 150.0] {
            let l = Link::nvlink_class(bw).unwrap();
            assert_eq!(l.bandwidth_gbps(), bw);
        }
    }
}
