//! Route-aware fabric topologies.
//!
//! The closed-form [`Switch`](crate::Switch) prices flows against endpoint
//! ports only — it has no notion of *where* a message physically travels.
//! A [`FabricTopology`] makes the wiring explicit: it enumerates the
//! directed links of the fabric and answers `route(from, to)` with the
//! ordered sequence of links a message must traverse, so the
//! [`Fabric`](crate::fabric::Fabric) engine can forward messages
//! hop-by-hop and charge each link's finite bandwidth.
//!
//! Three layouts are provided, run-time selectable through
//! [`TopologyKind`]:
//!
//! * [`Line`] — a chain `0 — 1 — … — n-1`; every transfer between distant
//!   nodes crosses every intermediate link, so the links next to a hot
//!   endpoint saturate first,
//! * [`Ring`] — the chain closed into a cycle; routes take the shorter
//!   direction (ties go clockwise), roughly halving the worst-case hop
//!   count and splitting a hot endpoint's traffic over two links,
//! * [`FullyConnected`] — a dedicated link per ordered pair, so contention
//!   appears only at shared endpoint ports. This is the layout whose
//!   measured behaviour must converge to the analytic
//!   [`Switch`](crate::Switch) fluid model (see the agreement gates in
//!   `sweep_fabric` and `tests/fabric_properties.rs`).

use std::fmt;
use std::str::FromStr;

use crate::link::Link;
use crate::InterconnectError;

/// A directed physical link between two adjacent fabric nodes.
///
/// Links are directed: `0 → 1` and `1 → 0` are distinct wires with
/// independent bandwidth (full duplex), matching NVLINK's per-direction
/// lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// Transmitting node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.from, self.to)
    }
}

/// Default local handoff cost, µs: moving a message between a node's core
/// and its link controller. This — not the multi-hop transit — is the only
/// stall a sender pays (the fabric's routing hardware forwards
/// asynchronously).
pub const DEFAULT_HANDOFF_US: f64 = 0.5;

/// The physical layout of a message fabric.
///
/// Implementations describe connectivity and per-hop costs; the
/// [`Fabric`](crate::fabric::Fabric) engine does the forwarding. All links
/// of one topology share a single capacity (a homogeneous fabric, like the
/// paper's NVLINK mesh); node egress/ingress ports have the same capacity,
/// so endpoint contention is modeled even when pair links are private.
pub trait FabricTopology: Send + Sync {
    /// Human-readable layout name.
    fn name(&self) -> &'static str;

    /// Number of nodes in the fabric.
    fn nodes(&self) -> usize;

    /// Every physical directed link, for fabric initialization and
    /// per-link accounting. The order is deterministic per topology.
    fn links(&self) -> Vec<LinkId>;

    /// The ordered directed links a message from `from` to `to` traverses.
    /// A self-route (`from == to`) is the empty route: the message never
    /// enters the fabric and is delivered after the local handoff alone.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::UnknownNode`] for an out-of-range
    /// endpoint.
    fn route(&self, from: usize, to: usize) -> Result<Vec<LinkId>, InterconnectError>;

    /// Effective bandwidth of each directed link (and of each node
    /// egress/ingress port), GB/s.
    fn link_capacity_gbps(&self) -> f64;

    /// Wire/controller latency to start one link traversal, µs.
    fn hop_latency_us(&self) -> f64;

    /// Local cost of moving a message between a node core and its link
    /// controller, µs — the only stall charged to the *sender*
    /// ([`Fabric::inject`](crate::fabric::Fabric::inject) returns it); the
    /// multi-hop transit runs asynchronously in the fabric.
    fn local_handoff_us(&self) -> f64;
}

/// Shared knobs of the built-in topologies: node count, the per-link
/// physical layer, and the local handoff cost.
#[derive(Debug, Clone, PartialEq)]
struct FabricParams {
    nodes: usize,
    link: Link,
    handoff_us: f64,
}

impl FabricParams {
    fn new(nodes: usize, link: Link) -> Result<Self, InterconnectError> {
        if nodes == 0 {
            return Err(InterconnectError::InvalidLink { parameter: "nodes" });
        }
        Ok(FabricParams {
            nodes,
            link,
            handoff_us: DEFAULT_HANDOFF_US,
        })
    }

    fn check(&self, node: usize) -> Result<(), InterconnectError> {
        if node >= self.nodes {
            return Err(InterconnectError::UnknownNode {
                index: node,
                nodes: self.nodes,
            });
        }
        Ok(())
    }
}

macro_rules! fabric_common {
    () => {
        /// Replace the local handoff cost (µs).
        ///
        /// # Panics
        ///
        /// Panics on a negative or non-finite value — handoff is a
        /// physical latency.
        pub fn with_handoff_us(mut self, handoff_us: f64) -> Self {
            assert!(
                handoff_us.is_finite() && handoff_us >= 0.0,
                "handoff_us must be finite and non-negative, got {handoff_us}"
            );
            self.params.handoff_us = handoff_us;
            self
        }

        /// The per-link physical layer.
        pub fn link(&self) -> &Link {
            &self.params.link
        }
    };
}

/// A chain `0 — 1 — … — n-1`. Node positions are their indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Line {
    params: FabricParams,
}

impl Line {
    /// A line of `nodes` nodes over `link`-class wires.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] for zero nodes.
    pub fn new(nodes: usize, link: Link) -> Result<Self, InterconnectError> {
        Ok(Line {
            params: FabricParams::new(nodes, link)?,
        })
    }

    fabric_common!();
}

impl FabricTopology for Line {
    fn name(&self) -> &'static str {
        "line"
    }

    fn nodes(&self) -> usize {
        self.params.nodes
    }

    fn links(&self) -> Vec<LinkId> {
        let mut out = Vec::with_capacity(2 * self.params.nodes.saturating_sub(1));
        for i in 0..self.params.nodes.saturating_sub(1) {
            out.push(LinkId { from: i, to: i + 1 });
            out.push(LinkId { from: i + 1, to: i });
        }
        out
    }

    fn route(&self, from: usize, to: usize) -> Result<Vec<LinkId>, InterconnectError> {
        self.params.check(from)?;
        self.params.check(to)?;
        let mut hops = Vec::with_capacity(from.abs_diff(to));
        let mut at = from;
        while at != to {
            let next = if to > at { at + 1 } else { at - 1 };
            hops.push(LinkId { from: at, to: next });
            at = next;
        }
        Ok(hops)
    }

    fn link_capacity_gbps(&self) -> f64 {
        self.params.link.effective_gbps()
    }

    fn hop_latency_us(&self) -> f64 {
        self.params.link.setup_us()
    }

    fn local_handoff_us(&self) -> f64 {
        self.params.handoff_us
    }
}

/// The chain closed into a cycle: node `i` connects to `(i + 1) mod n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ring {
    params: FabricParams,
}

impl Ring {
    /// A ring of `nodes` nodes over `link`-class wires.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] for zero nodes.
    pub fn new(nodes: usize, link: Link) -> Result<Self, InterconnectError> {
        Ok(Ring {
            params: FabricParams::new(nodes, link)?,
        })
    }

    fabric_common!();
}

impl FabricTopology for Ring {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn nodes(&self) -> usize {
        self.params.nodes
    }

    fn links(&self) -> Vec<LinkId> {
        let n = self.params.nodes;
        if n < 2 {
            return Vec::new();
        }
        // A 2-ring degenerates to the line's single bidirectional pair.
        let mut out = Vec::with_capacity(2 * n);
        for i in 0..n {
            let j = (i + 1) % n;
            if n == 2 && i == 1 {
                break;
            }
            out.push(LinkId { from: i, to: j });
            out.push(LinkId { from: j, to: i });
        }
        out
    }

    fn route(&self, from: usize, to: usize) -> Result<Vec<LinkId>, InterconnectError> {
        self.params.check(from)?;
        self.params.check(to)?;
        let n = self.params.nodes;
        if from == to {
            return Ok(Vec::new());
        }
        let clockwise = (to + n - from) % n;
        let counter = n - clockwise;
        // Shorter direction wins; ties go clockwise.
        let (step_cw, hops) = if clockwise <= counter {
            (true, clockwise)
        } else {
            (false, counter)
        };
        let mut route = Vec::with_capacity(hops);
        let mut at = from;
        for _ in 0..hops {
            let next = if step_cw {
                (at + 1) % n
            } else {
                (at + n - 1) % n
            };
            route.push(LinkId { from: at, to: next });
            at = next;
        }
        Ok(route)
    }

    fn link_capacity_gbps(&self) -> f64 {
        self.params.link.effective_gbps()
    }

    fn hop_latency_us(&self) -> f64 {
        self.params.link.setup_us()
    }

    fn local_handoff_us(&self) -> f64 {
        self.params.handoff_us
    }
}

/// A dedicated directed link per ordered node pair — the NVSwitch-like
/// layout whose only contention is at shared endpoint ports.
#[derive(Debug, Clone, PartialEq)]
pub struct FullyConnected {
    params: FabricParams,
}

impl FullyConnected {
    /// A full mesh of `nodes` nodes over `link`-class wires.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] for zero nodes.
    pub fn new(nodes: usize, link: Link) -> Result<Self, InterconnectError> {
        Ok(FullyConnected {
            params: FabricParams::new(nodes, link)?,
        })
    }

    fabric_common!();
}

impl FabricTopology for FullyConnected {
    fn name(&self) -> &'static str {
        "fully-connected"
    }

    fn nodes(&self) -> usize {
        self.params.nodes
    }

    fn links(&self) -> Vec<LinkId> {
        let n = self.params.nodes;
        let mut out = Vec::with_capacity(n * n.saturating_sub(1));
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    out.push(LinkId { from, to });
                }
            }
        }
        out
    }

    fn route(&self, from: usize, to: usize) -> Result<Vec<LinkId>, InterconnectError> {
        self.params.check(from)?;
        self.params.check(to)?;
        if from == to {
            return Ok(Vec::new());
        }
        Ok(vec![LinkId { from, to }])
    }

    fn link_capacity_gbps(&self) -> f64 {
        self.params.link.effective_gbps()
    }

    fn hop_latency_us(&self) -> f64 {
        self.params.link.setup_us()
    }

    fn local_handoff_us(&self) -> f64 {
        self.params.handoff_us
    }
}

/// Run-time topology selection (the `--topology` knob of the fabric
/// sweep, and the payload of the system model's fabric transfer backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// [`Line`].
    Line,
    /// [`Ring`].
    Ring,
    /// [`FullyConnected`].
    FullyConnected,
}

impl TopologyKind {
    /// Every selectable layout, worst-connected first.
    pub fn all() -> [TopologyKind; 3] {
        [
            TopologyKind::Line,
            TopologyKind::Ring,
            TopologyKind::FullyConnected,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Line => "line",
            TopologyKind::Ring => "ring",
            TopologyKind::FullyConnected => "fully-connected",
        }
    }

    /// Build the layout over `nodes` nodes of `link`-class wires.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] for zero nodes.
    pub fn build(
        &self,
        nodes: usize,
        link: Link,
    ) -> Result<Box<dyn FabricTopology>, InterconnectError> {
        Ok(match self {
            TopologyKind::Line => Box::new(Line::new(nodes, link)?),
            TopologyKind::Ring => Box::new(Ring::new(nodes, link)?),
            TopologyKind::FullyConnected => Box::new(FullyConnected::new(nodes, link)?),
        })
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for TopologyKind {
    type Err = InterconnectError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "line" => Ok(TopologyKind::Line),
            "ring" => Ok(TopologyKind::Ring),
            "full" | "fully-connected" | "fullyconnected" => Ok(TopologyKind::FullyConnected),
            _ => Err(InterconnectError::InvalidLink {
                parameter: "topology",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nv() -> Link {
        Link::nvlink2_x6()
    }

    #[test]
    fn line_routes_cross_every_intermediate_link() {
        let t = Line::new(5, nv()).expect("valid");
        let r = t.route(0, 4).expect("in range");
        assert_eq!(
            r,
            vec![
                LinkId { from: 0, to: 1 },
                LinkId { from: 1, to: 2 },
                LinkId { from: 2, to: 3 },
                LinkId { from: 3, to: 4 },
            ]
        );
        let back = t.route(3, 1).expect("in range");
        assert_eq!(
            back,
            vec![LinkId { from: 3, to: 2 }, LinkId { from: 2, to: 1 }]
        );
        assert!(t.route(0, 0).expect("self route").is_empty());
        assert_eq!(t.links().len(), 8, "4 bidirectional segments");
    }

    #[test]
    fn ring_takes_the_shorter_direction() {
        let t = Ring::new(6, nv()).expect("valid");
        assert_eq!(t.route(0, 1).expect("in range").len(), 1);
        // 0 -> 5 wraps counter-clockwise in one hop.
        assert_eq!(
            t.route(0, 5).expect("in range"),
            vec![LinkId { from: 0, to: 5 }]
        );
        // Antipodal distance ties go clockwise.
        assert_eq!(
            t.route(0, 3).expect("in range"),
            vec![
                LinkId { from: 0, to: 1 },
                LinkId { from: 1, to: 2 },
                LinkId { from: 2, to: 3 },
            ]
        );
        assert_eq!(t.links().len(), 12);
        // Every routed hop is a physical link.
        let links = t.links();
        for from in 0..6 {
            for to in 0..6 {
                for hop in t.route(from, to).expect("in range") {
                    assert!(links.contains(&hop), "{hop} not a physical link");
                }
            }
        }
    }

    #[test]
    fn two_node_ring_degenerates_to_a_line() {
        let r = Ring::new(2, nv()).expect("valid");
        let l = Line::new(2, nv()).expect("valid");
        let mut rl = r.links();
        let mut ll = l.links();
        rl.sort_unstable();
        ll.sort_unstable();
        assert_eq!(rl, ll, "no duplicate pair links on a 2-ring");
    }

    #[test]
    fn fully_connected_is_single_hop() {
        let t = FullyConnected::new(4, nv()).expect("valid");
        for from in 0..4 {
            for to in 0..4 {
                let r = t.route(from, to).expect("in range");
                assert_eq!(r.len(), usize::from(from != to));
            }
        }
        assert_eq!(t.links().len(), 12, "n*(n-1) directed links");
    }

    #[test]
    fn out_of_range_nodes_rejected() {
        let t = Ring::new(3, nv()).expect("valid");
        assert!(matches!(
            t.route(0, 3),
            Err(InterconnectError::UnknownNode { index: 3, nodes: 3 })
        ));
        assert!(t.route(7, 0).is_err());
        assert!(Line::new(0, nv()).is_err());
    }

    #[test]
    fn kind_round_trips_and_builds() {
        for kind in TopologyKind::all() {
            let parsed: TopologyKind = kind.label().parse().expect("label parses");
            assert_eq!(parsed, kind);
            let topo = kind.build(4, nv()).expect("valid");
            assert_eq!(topo.nodes(), 4);
            assert_eq!(topo.name(), kind.label());
            assert!(topo.link_capacity_gbps() > 0.0);
            assert!(topo.hop_latency_us() >= 0.0);
            assert!(topo.local_handoff_us() >= 0.0);
        }
        assert_eq!(
            "full".parse::<TopologyKind>().expect("alias"),
            TopologyKind::FullyConnected
        );
        assert!("mesh-of-trees".parse::<TopologyKind>().is_err());
    }

    #[test]
    fn handoff_is_configurable() {
        let t = Line::new(2, nv()).expect("valid").with_handoff_us(2.5);
        assert_eq!(t.local_handoff_us(), 2.5);
        assert_eq!(
            Line::new(2, nv()).expect("valid").local_handoff_us(),
            DEFAULT_HANDOFF_US
        );
    }
}
