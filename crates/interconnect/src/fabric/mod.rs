//! Route-aware, cycle-level message fabric.
//!
//! Where [`Switch`](crate::Switch) prices a set of concurrent flows with a
//! closed-form max-min fluid allocation, this module *simulates* them: a
//! [`FabricTopology`] describes the physical layout (which directed links
//! exist and which ordered sequence a message crosses between two nodes),
//! and a [`Fabric`] forwards [`inject`](Fabric::inject)ed messages hop by
//! hop under finite per-link and per-port bandwidth, tracking in-flight
//! and peak-demand counters per link.
//!
//! Three layouts are provided and run-time selectable via [`TopologyKind`]:
//! [`Line`], [`Ring`], and [`FullyConnected`]. The fully-connected fabric
//! is the measured counterpart of the analytic `Switch` — on the same flow
//! set the two agree within a few percent, which the `sweep_fabric` bench
//! gate pins across the Fig. 16 link-bandwidth grid.

pub mod engine;
pub mod topology;

pub use engine::{Delivery, Fabric, FabricStats, InjectReceipt, LinkStats};
pub use topology::{
    FabricTopology, FullyConnected, Line, LinkId, Ring, TopologyKind, DEFAULT_HANDOFF_US,
};
