//! The hop-by-hop message fabric.
//!
//! [`Fabric`] forwards injected messages along the routes a
//! [`FabricTopology`] computes, one link at a time, under finite per-link
//! (and per-port) bandwidth. Time advances in fixed ticks; each tick the
//! engine recomputes max-min fair rates for every message currently
//! streaming on a link, so the measured completion times converge to the
//! fluid allocation of the analytic [`Switch`](crate::Switch) as the tick
//! shrinks — the agreement the `sweep_fabric` gate pins for the
//! [`FullyConnected`](crate::fabric::FullyConnected) layout.
//!
//! Two pitfalls the exemplar literature names are load-bearing here:
//!
//! * **Senders stall only for the local handoff.** [`Fabric::inject`]
//!   returns [`FabricTopology::local_handoff_us`] — the cost of moving the
//!   message from the node core to its link controller. The multi-hop
//!   transit happens asynchronously inside the fabric; coupling sender
//!   stalls to end-to-end transit time would serialize the whole node.
//! * **Termination waits on in-flight messages.** [`Fabric::is_idle`] is
//!   false while any message is anywhere between handoff and final
//!   delivery, and [`Fabric::run_until_idle`] drains them all; cutting a
//!   run at "no new injections" would silently drop messages mid-route.

use std::collections::HashMap;

use crate::fabric::topology::{FabricTopology, LinkId};
use crate::InterconnectError;

/// Receipt for an injected message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectReceipt {
    /// Fabric-assigned message id (dense, in injection order).
    pub id: u64,
    /// The stall the *sender* pays, µs: the local handoff to its link
    /// controller — never the multi-hop transit.
    pub handoff_us: f64,
}

/// A message delivered to its destination node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Message id from the [`InjectReceipt`].
    pub id: u64,
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Payload size.
    pub bytes: u64,
    /// Virtual time the message was injected, µs.
    pub injected_us: f64,
    /// Virtual time it arrived at the destination's link controller, µs.
    pub delivered_us: f64,
}

impl Delivery {
    /// End-to-end fabric latency, µs (handoff + all hops).
    pub fn transit_us(&self) -> f64 {
        self.delivered_us - self.injected_us
    }
}

/// Where a message currently is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Local handoff from the sender core to its link controller.
    Handoff { remaining_us: f64 },
    /// Paying the wire latency of the current hop.
    HopLatency { remaining_us: f64 },
    /// Streaming payload bytes across the current hop.
    Streaming { remaining_bytes: f64 },
}

/// One message in flight, carrying its whole physical route and a cursor.
#[derive(Debug, Clone)]
struct InFlightMessage {
    id: u64,
    from: usize,
    to: usize,
    bytes: u64,
    route: Vec<LinkId>,
    hop: usize,
    phase: Phase,
    injected_us: f64,
}

/// Traffic counters for one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Messages that completed a traversal of this link.
    pub forwarded_messages: u64,
    /// Payload bytes that completed a traversal of this link.
    pub forwarded_bytes: u64,
    /// Peak number of messages concurrently streaming on this link — the
    /// link's peak demand in message count (× message rate for GB/s).
    pub peak_in_flight: usize,
}

/// Fabric-wide counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FabricStats {
    /// Messages injected so far.
    pub injected: u64,
    /// Messages delivered so far.
    pub delivered: u64,
    /// Peak number of messages concurrently in flight anywhere.
    pub peak_in_flight: usize,
    /// Per-link counters, ordered like [`Fabric::links`].
    pub per_link: Vec<(LinkId, LinkStats)>,
}

/// Bandwidth-sharing resources: every directed link, plus one egress and
/// one ingress port per node (a hop on `u → v` consumes all three), all at
/// the topology's uniform link capacity. Ports are what make endpoint
/// contention appear even on private pair links — the effect the analytic
/// `Switch` models, and the reason the fully-connected fabric converges to
/// it.
#[derive(Debug)]
struct Resources {
    /// Resource count: `2 * nodes + links`.
    count: usize,
    nodes: usize,
    link_index: HashMap<LinkId, usize>,
}

impl Resources {
    fn new(nodes: usize, links: &[LinkId]) -> Self {
        let link_index = links
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, 2 * nodes + i))
            .collect();
        Resources {
            count: 2 * nodes + links.len(),
            nodes,
            link_index,
        }
    }

    /// The three resources a traversal of `link` consumes.
    fn of(&self, link: LinkId) -> [usize; 3] {
        [
            link.from,              // egress port
            self.nodes + link.to,   // ingress port
            self.link_index[&link], // the wire
        ]
    }
}

/// The cycle-level message fabric over a [`FabricTopology`].
///
/// # Example
///
/// Two messages leaving node 0 at once share its egress port and take
/// about twice as long as one alone; a disjoint pair is unaffected:
///
/// ```
/// use tensordimm_interconnect::fabric::{Fabric, FullyConnected};
/// use tensordimm_interconnect::Link;
///
/// let topo = FullyConnected::new(6, Link::nvlink2_x6())?;
/// let mut fabric = Fabric::new(Box::new(topo));
/// fabric.inject(0, 1, 64 << 20)?;
/// fabric.inject(0, 2, 64 << 20)?;
/// fabric.inject(3, 4, 64 << 20)?;
/// let deliveries = fabric.run_until_idle(1.0)?;
/// assert!(fabric.is_idle());
/// let t = |id: u64| deliveries.iter().find(|d| d.id == id).unwrap().transit_us();
/// assert!(t(0) > 1.8 * t(2) && t(0) < 2.2 * t(2));
/// # Ok::<(), tensordimm_interconnect::InterconnectError>(())
/// ```
pub struct Fabric {
    topo: Box<dyn FabricTopology>,
    resources: Resources,
    links: Vec<LinkId>,
    /// Bytes per µs per resource.
    cap: f64,
    in_flight: Vec<InFlightMessage>,
    now_us: f64,
    next_id: u64,
    stats: FabricStats,
}

impl Fabric {
    /// A fabric over `topo`, at virtual time zero.
    pub fn new(topo: Box<dyn FabricTopology>) -> Self {
        let links = topo.links();
        let resources = Resources::new(topo.nodes(), &links);
        let cap = topo.link_capacity_gbps() * 1e3;
        let per_link = links.iter().map(|&l| (l, LinkStats::default())).collect();
        Fabric {
            topo,
            resources,
            links,
            cap,
            in_flight: Vec::new(),
            now_us: 0.0,
            next_id: 0,
            stats: FabricStats {
                per_link,
                ..FabricStats::default()
            },
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &dyn FabricTopology {
        self.topo.as_ref()
    }

    /// The physical directed links, in per-link-stats order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Current virtual time, µs.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// Messages anywhere between handoff and delivery.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// True when no message is in flight. Termination must wait for this —
    /// a fabric with pending messages has undelivered work even if nothing
    /// new will be injected.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Inject a message at the current virtual time. Returns the message
    /// id and the sender's stall — the local handoff cost only.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::UnknownNode`] for an out-of-range
    /// endpoint.
    pub fn inject(
        &mut self,
        from: usize,
        to: usize,
        bytes: u64,
    ) -> Result<InjectReceipt, InterconnectError> {
        let route = self.topo.route(from, to)?;
        let handoff_us = self.topo.local_handoff_us();
        let id = self.next_id;
        self.next_id += 1;
        self.in_flight.push(InFlightMessage {
            id,
            from,
            to,
            bytes,
            route,
            hop: 0,
            phase: Phase::Handoff {
                remaining_us: handoff_us,
            },
            injected_us: self.now_us,
        });
        self.stats.injected += 1;
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight.len());
        Ok(InjectReceipt { id, handoff_us })
    }

    /// Max-min fair rate (bytes/µs) for each in-flight message; zero for
    /// messages not currently streaming. The same progressive-filling
    /// allocation as [`Switch::concurrent_transfer_us`], generalized to
    /// the per-hop resource sets (egress port, wire, ingress port).
    ///
    /// [`Switch::concurrent_transfer_us`]: crate::Switch::concurrent_transfer_us
    fn fair_share_rates(&self) -> Vec<f64> {
        let n = self.in_flight.len();
        let mut rate = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        let streaming: Vec<usize> = (0..n)
            .filter(|&i| matches!(self.in_flight[i].phase, Phase::Streaming { .. }))
            .collect();
        if streaming.is_empty() {
            return rate;
        }
        let uses = |i: usize| {
            self.resources
                .of(self.in_flight[i].route[self.in_flight[i].hop])
        };
        loop {
            let mut residual = vec![self.cap; self.resources.count];
            let mut degree = vec![0usize; self.resources.count];
            for &i in &streaming {
                for r in uses(i) {
                    if frozen[i] {
                        residual[r] -= rate[i];
                    } else {
                        degree[r] += 1;
                    }
                }
            }
            let bottleneck = (0..self.resources.count)
                .filter(|&r| degree[r] > 0)
                .map(|r| (residual[r] / degree[r] as f64, r))
                .min_by(|a, b| a.0.total_cmp(&b.0));
            let Some((share, port)) = bottleneck else {
                break;
            };
            // Float-error floor: a legitimately-allocated share is a
            // meaningful fraction of capacity; clamping keeps every
            // streaming message progressing so `run_until_idle` always
            // terminates.
            let share = share.max(self.cap * 1e-9);
            let mut changed = false;
            for &i in &streaming {
                if !frozen[i] && uses(i).contains(&port) {
                    rate[i] = share;
                    frozen[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        rate
    }

    /// Advance virtual time by one tick, moving every in-flight message
    /// through its current phase, and return the messages delivered during
    /// the tick.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] for a non-positive or
    /// non-finite tick.
    pub fn advance(&mut self, tick_us: f64) -> Result<Vec<Delivery>, InterconnectError> {
        if !tick_us.is_finite() || tick_us <= 0.0 {
            return Err(InterconnectError::InvalidLink {
                parameter: "tick_us",
            });
        }
        let rates = self.fair_share_rates();
        // Per-link concurrency at this tick, for the peak-demand counters.
        for (link, stats) in &mut self.stats.per_link {
            let on_link = self
                .in_flight
                .iter()
                .filter(|m| matches!(m.phase, Phase::Streaming { .. }) && m.route[m.hop] == *link)
                .count();
            stats.peak_in_flight = stats.peak_in_flight.max(on_link);
        }
        self.now_us += tick_us;
        let now = self.now_us;
        let hop_latency = self.topo.hop_latency_us();

        let mut delivered = Vec::new();
        // Advance in injection (id) order — determinism is part of the
        // fabric's contract.
        for (i, m) in self.in_flight.iter_mut().enumerate() {
            let mut hop_completed = false;
            match &mut m.phase {
                Phase::Handoff { remaining_us } => {
                    *remaining_us -= tick_us;
                    if *remaining_us <= 0.0 {
                        if m.hop < m.route.len() {
                            // First hop pays its wire latency like any other.
                            m.phase = Phase::HopLatency {
                                remaining_us: hop_latency + *remaining_us,
                            };
                        } else {
                            // Empty route (self-delivery): done after the
                            // handoff alone.
                            delivered.push(Delivery {
                                id: m.id,
                                from: m.from,
                                to: m.to,
                                bytes: m.bytes,
                                injected_us: m.injected_us,
                                delivered_us: now,
                            });
                        }
                    }
                }
                Phase::HopLatency { remaining_us } => {
                    *remaining_us -= tick_us;
                    if *remaining_us <= 0.0 {
                        m.phase = Phase::Streaming {
                            remaining_bytes: m.bytes as f64,
                        };
                    }
                }
                Phase::Streaming { remaining_bytes } => {
                    *remaining_bytes -= rates[i] * tick_us;
                    if *remaining_bytes <= 0.0 {
                        hop_completed = true;
                    }
                }
            }
            if hop_completed {
                let link = m.route[m.hop];
                let (_, stats) = self
                    .stats
                    .per_link
                    .iter_mut()
                    .find(|(l, _)| *l == link)
                    .expect("routed hops are physical links");
                stats.forwarded_messages += 1;
                stats.forwarded_bytes += m.bytes;
                m.hop += 1;
                if m.hop == m.route.len() {
                    delivered.push(Delivery {
                        id: m.id,
                        from: m.from,
                        to: m.to,
                        bytes: m.bytes,
                        injected_us: m.injected_us,
                        delivered_us: now,
                    });
                } else {
                    // Store-and-forward: the next hop pays its own wire
                    // latency before streaming restarts.
                    m.phase = Phase::HopLatency {
                        remaining_us: hop_latency,
                    };
                }
            }
        }
        let done: Vec<u64> = delivered.iter().map(|d| d.id).collect();
        self.in_flight.retain(|m| !done.contains(&m.id));
        self.stats.delivered += done.len() as u64;
        Ok(delivered)
    }

    /// Run ticks of `tick_us` until every in-flight message has been
    /// delivered, returning all deliveries in completion order. This is
    /// the fabric's termination contract: it never declares the run over
    /// while a message is still mid-route.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] for a non-positive or
    /// non-finite tick.
    pub fn run_until_idle(&mut self, tick_us: f64) -> Result<Vec<Delivery>, InterconnectError> {
        let mut out = Vec::new();
        while !self.is_idle() {
            out.extend(self.advance(tick_us)?);
        }
        Ok(out)
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("topology", &self.topo.name())
            .field("nodes", &self.topo.nodes())
            .field("now_us", &self.now_us)
            .field("in_flight", &self.in_flight.len())
            .field("stats", &(self.stats.injected, self.stats.delivered))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::topology::TopologyKind;
    use crate::link::Link;

    fn nv() -> Link {
        Link::nvlink2_x6()
    }

    fn fabric(kind: TopologyKind, nodes: usize) -> Fabric {
        Fabric::new(kind.build(nodes, nv()).expect("valid"))
    }

    #[test]
    fn single_message_matches_link_model_on_one_hop() {
        let mut f = fabric(TopologyKind::FullyConnected, 4);
        let bytes = 16 << 20;
        let receipt = f.inject(0, 1, bytes).expect("in range");
        assert_eq!(receipt.handoff_us, f.topology().local_handoff_us());
        let expected = receipt.handoff_us + nv().transfer_time_us(bytes);
        let d = f.run_until_idle(expected / 4096.0).expect("positive tick");
        assert_eq!(d.len(), 1);
        let err = (d[0].transit_us() - expected).abs() / expected;
        assert!(
            err < 0.01,
            "transit {} vs {expected} ({err:.4})",
            d[0].transit_us()
        );
    }

    #[test]
    fn sender_stall_is_the_handoff_not_the_transit() {
        // A 6-node line: 0 -> 5 crosses five hops, but the sender's stall
        // is the (single) local handoff regardless of route length.
        let mut f = fabric(TopologyKind::Line, 6);
        let near = f.inject(0, 1, 1 << 20).expect("in range");
        let far = f.inject(2, 5, 1 << 20).expect("in range");
        assert_eq!(near.handoff_us, far.handoff_us);
        let d = f.run_until_idle(0.05).expect("positive tick");
        let t = |id: u64| {
            d.iter()
                .find(|x| x.id == id)
                .expect("delivered")
                .transit_us()
        };
        assert!(
            t(far.id) > 2.0 * t(near.id),
            "multi-hop transit {} should dwarf single-hop {}",
            t(far.id),
            t(near.id)
        );
    }

    #[test]
    fn termination_waits_on_in_flight_messages() {
        let mut f = fabric(TopologyKind::Ring, 4);
        assert!(f.is_idle());
        f.inject(0, 2, 64 << 20).expect("in range");
        assert!(!f.is_idle(), "an injected message is in-flight work");
        // A few ticks in, the message is still mid-route.
        for _ in 0..3 {
            f.advance(1.0).expect("positive tick");
        }
        assert!(!f.is_idle());
        assert_eq!(f.stats().delivered, 0);
        let d = f.run_until_idle(1.0).expect("positive tick");
        assert_eq!(d.len(), 1);
        assert!(f.is_idle());
        assert_eq!(f.stats().delivered, 1);
    }

    #[test]
    fn line_forwards_hop_by_hop_through_intermediate_links() {
        let mut f = fabric(TopologyKind::Line, 4);
        f.inject(0, 3, 8 << 20).expect("in range");
        f.run_until_idle(0.25).expect("positive tick");
        let stats = f.stats().clone();
        let forwarded = |from: usize, to: usize| {
            stats
                .per_link
                .iter()
                .find(|(l, _)| *l == LinkId { from, to })
                .expect("physical link")
                .1
        };
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            assert_eq!(forwarded(a, b).forwarded_messages, 1, "{a}->{b}");
            assert_eq!(forwarded(a, b).forwarded_bytes, 8 << 20, "{a}->{b}");
        }
        // The reverse wires never carried it.
        assert_eq!(forwarded(1, 0).forwarded_messages, 0);
    }

    #[test]
    fn shared_chain_link_halves_bandwidth() {
        // Both messages leave node 0 rightward on a line: the 0->1 wire is
        // shared, so each runs at half rate even though destinations differ.
        let mut f = fabric(TopologyKind::Line, 3);
        let a = f.inject(0, 1, 32 << 20).expect("in range");
        f.inject(0, 2, 32 << 20).expect("in range");
        let solo = nv().transfer_time_us(32 << 20);
        let d = f.run_until_idle(solo / 2048.0).expect("positive tick");
        let t = |id: u64| {
            d.iter()
                .find(|x| x.id == id)
                .expect("delivered")
                .transit_us()
        };
        assert!(
            t(a.id) > 1.8 * solo && t(a.id) < 2.2 * solo,
            "shared-wire transit {} vs solo {solo}",
            t(a.id)
        );
        let peak = f
            .stats()
            .per_link
            .iter()
            .find(|(l, _)| *l == LinkId { from: 0, to: 1 })
            .expect("physical link")
            .1
            .peak_in_flight;
        assert_eq!(peak, 2, "peak demand counter sees both messages");
    }

    #[test]
    fn self_delivery_costs_only_the_handoff() {
        let mut f = fabric(TopologyKind::FullyConnected, 3);
        let r = f.inject(1, 1, 1 << 30).expect("in range");
        let d = f.run_until_idle(0.1).expect("positive tick");
        assert_eq!(d.len(), 1);
        assert!(
            (d[0].transit_us() - r.handoff_us).abs() <= 0.1 + 1e-9,
            "self-delivery transit {} vs handoff {}",
            d[0].transit_us(),
            r.handoff_us
        );
    }

    #[test]
    fn bad_endpoints_and_ticks_rejected() {
        let mut f = fabric(TopologyKind::Line, 2);
        assert!(f.inject(0, 2, 64).is_err());
        f.inject(0, 1, 64).expect("in range");
        assert!(f.advance(0.0).is_err());
        assert!(f.advance(f64::NAN).is_err());
        assert!(f.run_until_idle(-1.0).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut f = fabric(TopologyKind::Ring, 6);
            for g in 1..6 {
                f.inject(0, g, (g as u64) << 20).expect("in range");
            }
            f.run_until_idle(0.5)
                .expect("positive tick")
                .iter()
                .map(|d| (d.id, d.delivered_us.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fully_connected_and_line_order_as_expected() {
        // Broadcast from node 0 to everyone: the line serializes traffic
        // through the 0->1 wire while the full mesh only shares the egress
        // port — strictly better hop latency budget, so line >= mesh.
        let bytes = 16 << 20;
        let time = |kind: TopologyKind| {
            let mut f = fabric(kind, 5);
            for g in 1..5 {
                f.inject(0, g, bytes).expect("in range");
            }
            f.run_until_idle(1.0)
                .expect("positive tick")
                .iter()
                .map(|d| d.delivered_us)
                .fold(0.0f64, f64::max)
        };
        let line = time(TopologyKind::Line);
        let ring = time(TopologyKind::Ring);
        let full = time(TopologyKind::FullyConnected);
        assert!(
            line >= ring && ring >= full,
            "line {line} ring {ring} full {full}"
        );
        assert!(
            line > 1.2 * full,
            "line {line} should clearly trail full {full}"
        );
    }

    #[test]
    fn fabric_stats_conserve_messages() {
        let mut f = fabric(TopologyKind::FullyConnected, 8);
        for g in 1..8 {
            f.inject(0, g, 4 << 20).expect("in range");
        }
        let d = f.run_until_idle(0.5).expect("positive tick");
        assert_eq!(d.len(), 7);
        assert_eq!(f.stats().injected, 7);
        assert_eq!(f.stats().delivered, 7);
        assert_eq!(f.stats().peak_in_flight, 7);
        let mut ids: Vec<u64> = d.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 7, "every message delivered exactly once");
    }
}
