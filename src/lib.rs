//! # TensorDIMM
//!
//! A from-scratch Rust reproduction of **"TensorDIMM: A Practical
//! Near-Memory Processing Architecture for Embeddings and Tensor Operations
//! in Deep Learning"** (Kwon, Lee & Rhu — MICRO-52, 2019).
//!
//! This facade crate re-exports every subsystem of the reproduction:
//!
//! * [`dram`] — cycle-level DDR4 simulator (the Ramulator substitute),
//! * [`isa`] — the TensorISA (`GATHER` / `REDUCE` / `AVERAGE`),
//! * [`nmp`] — the near-memory-processing core in the DIMM buffer device,
//! * [`core`] — `TensorDimm` devices, the `TensorNode` pooled-memory system
//!   and its runtime (the paper's primary contribution),
//! * [`cache`] — CPU cache-hierarchy model for the baseline,
//! * [`interconnect`] — PCIe / NVLINK / NVSwitch transfer models,
//! * [`embedding`] — embedding tables, index generators, golden tensor ops,
//! * [`models`] — the four recommender workloads of Table 2 plus device
//!   compute models,
//! * [`system`] — the five end-to-end design points (`CPU-only`, `CPU-GPU`,
//!   `PMEM`, `TDIMM`, `GPU-only`) evaluated in the paper,
//! * [`serving`] — request-level discrete-event serving simulator: arrival
//!   processes, dynamic batching, multi-GPU dispatch and tail-latency
//!   metrics over the system model,
//! * [`cluster`] — sharded multi-node serving: row placement plans (hash,
//!   round-robin, capacity-aware, hot-cold split), replication, failover
//!   and SLA-aware degraded-mode routing over a fan-out/rejoin simulator
//!   built on the per-node serving engine,
//! * [`faults`] — seeded virtual-time fault schedules (DIMM rank losses,
//!   node outages, gray ranks, row faults) injected into the serving loop
//!   for degraded-mode availability studies,
//! * [`exec`] — deterministic scoped worker-pool helpers behind the
//!   parallel sweep/pricer/DRAM-channel paths (results bit-identical to
//!   sequential execution),
//! * [`analysis`] — static TensorISA verifier (abstract interpretation
//!   over instruction programs) and access-plan analyzer (bank/rank
//!   conflict estimates, physical cycle lower bounds, access-pattern
//!   lints) that gate the replay engine in verify mode.
//!
//! # Quickstart
//!
//! Gather and reduce embeddings near-memory on a TensorNode. The doctest
//! uses the 4-DIMM [`TensorNodeConfig::small`] so it stays fast and
//! deterministic; swap in `TensorNodeConfig::default()` for the paper's
//! full 32-DIMM Table 1 node.
//!
//! [`TensorNodeConfig::small`]: crate::core::TensorNodeConfig::small
//!
//! ```
//! use tensordimm::core::{TensorNode, TensorNodeConfig, ReduceOp};
//!
//! let mut node = TensorNode::new(TensorNodeConfig::small())?;
//! let table = node.create_table("users", 1024, 128)?;
//! node.fill_table(&table, |row, col| row as f32 + col as f32)?;
//!
//! let gathered = node.gather(&table, &[3, 5, 7, 9])?;
//! let pairwise = node.reduce(&gathered, &gathered, ReduceOp::Add)?;
//! let host = node.read_tensor(&pairwise)?;
//! assert_eq!(host.len(), 4 * 128);
//! # Ok::<(), tensordimm::core::CoreError>(())
//! ```
//!
//! See `examples/` for end-to-end recommender-inference scenarios and
//! `crates/bench` for the binaries regenerating every table and figure of
//! the paper.

pub use tensordimm_analysis as analysis;
pub use tensordimm_cache as cache;
pub use tensordimm_cluster as cluster;
pub use tensordimm_core as core;
pub use tensordimm_dram as dram;
pub use tensordimm_embedding as embedding;
pub use tensordimm_exec as exec;
pub use tensordimm_faults as faults;
pub use tensordimm_interconnect as interconnect;
pub use tensordimm_isa as isa;
pub use tensordimm_models as models;
pub use tensordimm_nmp as nmp;
pub use tensordimm_serving as serving;
pub use tensordimm_system as system;
