//! Property-based contracts between the static analyzer and the runtime:
//!
//! * `analyze_program` agrees with `execute_on_dimm` over random
//!   multi-step programs — accepted programs execute cleanly with the
//!   exact predicted traffic; determinately rejected programs fail (an
//!   `Err` or a memory-model panic) at exactly the flagged instruction;
//! * `analyze_plan`'s physical cycle lower bound never exceeds the cycles
//!   `NmpCore::run_plan` replays, across random gathers, hot-row cache
//!   shapes and refresh settings — and verify mode is bit-identical off;
//! * the analyzer's address lowering matches the NMP-local controller's.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use tensordimm::analysis::{analyze_plan, analyze_program, lower_block_byte, ProgramStep};
use tensordimm::cache::HotRowCacheConfig;
use tensordimm::isa::{
    execute_on_dimm, AccessPlan, DimmContext, ExecSummary, Instruction, ReduceOp, TensorMemory,
    VecMemory,
};
use tensordimm::nmp::{LocalAddressMap, NmpConfig, NmpCore};

/// Memory size (in 64-byte blocks) the agreement programs run against:
/// small enough that random operands regularly fall out of bounds.
const POOL_BLOCKS: u64 = 4096;

fn arb_ctx() -> impl Strategy<Value = DimmContext> {
    (1u64..5, 0u64..4).prop_map(|(nd, tid)| DimmContext::new(nd, tid % nd))
}

/// One program step: an instruction plus (for GATHER) its runtime index
/// list. Operand ranges straddle `POOL_BLOCKS` and the `node_dim`
/// alignment rules, so programs mix clean runs, validation rejections and
/// out-of-bounds faults.
fn arb_step() -> impl Strategy<Value = (Instruction, Option<Vec<u64>>)> {
    let gather = (
        0u64..6000,
        0u64..6000,
        0u64..6000,
        1u64..48,
        1u64..12,
        proptest::collection::vec(0u64..1500, 0..48),
    )
        .prop_map(
            |(table_base, idx_base, output_base, count, vec_blocks, idx)| {
                (
                    Instruction::Gather {
                        table_base,
                        idx_base,
                        output_base,
                        count,
                        vec_blocks,
                    },
                    Some(idx),
                )
            },
        );
    let reduce = (0u64..6000, 0u64..6000, 0u64..6000, 1u64..256).prop_map(
        |(input1, input2, output_base, count)| {
            (
                Instruction::Reduce {
                    input1,
                    input2,
                    output_base,
                    count,
                    op: ReduceOp::Add,
                },
                None,
            )
        },
    );
    let average = (0u64..6000, 0u64..6000, 1u64..16, 1u64..6, 1u64..12).prop_map(
        |(input_base, output_base, count, group, vec_blocks)| {
            (
                Instruction::Average {
                    input_base,
                    output_base,
                    count,
                    group,
                    vec_blocks,
                },
                None,
            )
        },
    );
    prop_oneof![gather, reduce, average]
}

/// Execute a program step-by-step on a zero-initialized memory,
/// pre-staging each GATHER's index list exactly as the analyzer models it
/// (entries past the provided list are zero). Returns the merged summary,
/// or the index of the first step that fails — by `Err` or by
/// memory-model panic, the two runtime faulting modes.
fn run_program(
    prog: &[(Instruction, Option<Vec<u64>>)],
    ctx: DimmContext,
    blocks: u64,
) -> Result<ExecSummary, usize> {
    let mut mem = VecMemory::new(blocks);
    let mut total = ExecSummary::default();
    for (i, (instr, indices)) in prog.iter().enumerate() {
        if let (
            Instruction::Gather {
                idx_base, count, ..
            },
            Some(idx),
        ) = (instr, indices)
        {
            // Stage every index block the executor will read, padding the
            // list with zeros (the analyzer's unwrap_or(0) convention).
            let lookups = *count as usize;
            let mut vals = vec![0u32; count.div_ceil(16) as usize * 16];
            for (j, &v) in idx.iter().take(lookups).enumerate() {
                vals[j] = v as u32;
            }
            for (j, chunk) in vals.chunks(16).enumerate() {
                let blk = idx_base + j as u64;
                if blk < blocks {
                    let mut lanes = [0u32; 16];
                    lanes[..chunk.len()].copy_from_slice(chunk);
                    mem.write_u32(blk, lanes);
                }
            }
        }
        match catch_unwind(AssertUnwindSafe(|| execute_on_dimm(instr, &mut mem, ctx))) {
            Ok(Ok(summary)) => total.merge(&summary),
            Ok(Err(_)) | Err(_) => return Err(i),
        }
    }
    Ok(total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The agreement contract: accepted ⇒ the executor succeeds with the
    /// exact predicted traffic; determinately rejected ⇒ the executor
    /// fails at exactly the flagged instruction. (Indeterminate programs
    /// — a prior write clobbered an index list — make no runtime claim.)
    #[test]
    fn analyzer_agrees_with_executor(
        ctx in arb_ctx(),
        prog in proptest::collection::vec(arb_step(), 1..4),
    ) {
        let steps: Vec<ProgramStep<'_>> = prog
            .iter()
            .map(|(instr, idx)| match idx {
                Some(v) => ProgramStep::with_indices(*instr, v),
                None => ProgramStep::new(*instr),
            })
            .collect();
        let report = analyze_program(&steps, ctx, POOL_BLOCKS);
        prop_assume!(!report.indeterminate());
        let outcome = run_program(&prog, ctx, POOL_BLOCKS);
        match report.first_error() {
            None => {
                prop_assert_eq!(outcome, Ok(report.summary), "accepted program failed");
            }
            Some(d) => {
                prop_assert_eq!(
                    outcome.err(),
                    Some(d.instr_index),
                    "rejection {} did not match the runtime fault site",
                    d
                );
            }
        }
    }

    /// The cycle bound contract on random gather plans: the analyzer's
    /// physical lower bound never exceeds the replayed cycles, its DRAM
    /// traffic prediction is exact (verify mode asserts both internally),
    /// and turning verify mode off is bit-identical.
    #[test]
    fn lower_bound_dominated_by_replay(
        nd_tid in (2u64..9, 0u64..8),
        count in 1u64..96,
        vb_stripes in 1u64..3,
        rows in 1u64..64,
        cache_rows in prop_oneof![Just(0u64), Just(4u64), Just(16u64)],
        refresh_sel in 0u32..2,
        idx_seed in 0u64..u64::MAX,
    ) {
        let (nd, tid_sel) = nd_tid;
        let refresh = refresh_sel == 1;
        let ctx = DimmContext::new(nd, tid_sel % nd);
        let vb = nd * vb_stripes;
        // Distinct stripe-aligned operand regions, as the node allocates.
        let region = (rows.max(count) + 1) * vb;
        let instr = Instruction::Gather {
            table_base: 0,
            idx_base: 3 * region,
            output_base: region,
            count,
            vec_blocks: vb,
        };
        // Cheap deterministic index stream over the table's rows.
        let indices: Vec<u64> = (0..count)
            .map(|i| (idx_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i * 0x1f3) ) % rows)
            .collect();

        let mut cfg = NmpConfig::paper();
        cfg.dram.refresh_enabled = refresh;
        if cache_rows > 0 {
            cfg.hot_rows = HotRowCacheConfig::fully_associative(cache_rows);
        }
        let mut plain = NmpCore::new(cfg.clone()).expect("valid config");
        cfg.verify = true;
        let mut checked = NmpCore::new(cfg.clone()).expect("valid config");

        let a = plain
            .run_instruction(&instr, ctx, Some(&indices))
            .expect("replay succeeds");
        // Verify mode re-checks DRAM counts and the bound internally; a
        // `NmpError::Verify` here is the contract breaking.
        let b = checked
            .run_instruction(&instr, ctx, Some(&indices))
            .expect("verify mode accepts the replay");
        prop_assert_eq!(&a, &b, "verify mode must be bit-identical");

        let plan = AccessPlan::for_dimm(&instr, ctx, Some(&indices)).expect("valid plan");
        let analysis = analyze_plan(&plan, ctx, &cfg.dram, cfg.hot_rows).expect("valid inputs");
        prop_assert_eq!(analysis.dram_reads, a.reads);
        prop_assert_eq!(analysis.dram_writes, a.writes);
        prop_assert!(
            analysis.lower_bound() <= a.cycles,
            "lower bound {} exceeds replayed {}",
            analysis.lower_bound(),
            a.cycles
        );
    }

    /// The analyzer lowers block addresses exactly as the NMP-local
    /// memory controller does (both stripe branches collapse to
    /// `block / node_dim * 64`, wrapped into DIMM capacity).
    #[test]
    fn lowering_matches_local_controller(
        nd_tid in (1u64..33, 0u64..32),
        block in 0u64..1 << 55,
        cap_pow in 20u32..36,
    ) {
        let (nd, tid_sel) = nd_tid;
        let tid = tid_sel % nd;
        let capacity = 1u64 << cap_pow;
        let map = LocalAddressMap::new(nd, tid);
        let byte = map
            .local_byte_addr(block)
            .unwrap_or_else(|| map.replicated_byte_addr(block))
            % capacity;
        prop_assert_eq!(lower_block_byte(block, nd, capacity), byte);
    }
}
