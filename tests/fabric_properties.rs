//! Property tests for the cycle-level interconnect fabric: message
//! conservation (every injected message delivered exactly once),
//! termination only after in-flight messages drain, bit-identical
//! determinism (per run and across sweep worker counts), and the
//! fully-connected fabric converging to the analytic `Switch` oracle on
//! single-bottleneck flow sets.

use proptest::prelude::*;

use tensordimm::interconnect::fabric::Fabric;
use tensordimm::interconnect::{Flow, Link, Switch, TopologyKind};
use tensordimm::models::{Workload, WorkloadName};
use tensordimm::serving::{offered_load_sweep_par, BatchPolicy, SimConfig};
use tensordimm::system::{DesignPoint, SystemModel, TransferBackend};

fn arb_kind() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Line),
        Just(TopologyKind::Ring),
        Just(TopologyKind::FullyConnected),
    ]
}

/// Random (from, to, bytes) message sets over an `n`-node fabric.
fn arb_messages(n: usize) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec((0..n, 0..n, (1u64 << 16)..(1 << 24)), 1..12)
}

fn build(kind: TopologyKind, nodes: usize) -> Fabric {
    Fabric::new(
        kind.build(nodes, Link::nvlink2_x6())
            .expect("nonzero nodes, valid link"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation: every injected message is delivered exactly once —
    /// no loss, no duplication — on every layout, for arbitrary
    /// (including self-loop) endpoint sets.
    #[test]
    fn every_message_is_delivered_exactly_once(
        kind in arb_kind(),
        messages in arb_messages(6),
    ) {
        let mut fabric = build(kind, 6);
        for &(from, to, bytes) in &messages {
            fabric.inject(from, to, bytes).expect("endpoints in range");
        }
        let deliveries = fabric.run_until_idle(0.5).expect("positive tick");
        prop_assert_eq!(deliveries.len(), messages.len());
        let mut ids: Vec<u64> = deliveries.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(&ids, &(0..messages.len() as u64).collect::<Vec<_>>());
        for d in &deliveries {
            let (from, to, bytes) = messages[d.id as usize];
            prop_assert_eq!((d.from, d.to, d.bytes), (from, to, bytes));
            prop_assert!(d.delivered_us > d.injected_us);
        }
        prop_assert_eq!(fabric.stats().injected, messages.len() as u64);
        prop_assert_eq!(fabric.stats().delivered, messages.len() as u64);
        prop_assert!(fabric.is_idle());
    }

    /// Termination waits on in-flight messages: while anything is
    /// mid-route the fabric reports busy and has delivered nothing it
    /// hasn't accounted for; `run_until_idle` then drains every pending
    /// message without injecting more.
    #[test]
    fn termination_only_after_in_flight_messages_drain(
        kind in arb_kind(),
        messages in arb_messages(5),
        partial_ticks in 1usize..6,
    ) {
        let mut fabric = build(kind, 5);
        for &(from, to, bytes) in &messages {
            fabric.inject(from, to, bytes).expect("endpoints in range");
        }
        let mut early = 0usize;
        for _ in 0..partial_ticks {
            early += fabric.advance(0.25).expect("positive tick").len();
        }
        // Invariant mid-run: delivered + in-flight accounts for everything.
        prop_assert_eq!(early + fabric.in_flight(), messages.len());
        prop_assert_eq!(fabric.is_idle(), fabric.in_flight() == 0);
        let late = fabric.run_until_idle(0.25).expect("positive tick").len();
        prop_assert_eq!(early + late, messages.len());
        prop_assert!(fabric.is_idle());
    }

    /// Determinism: identical injections replay to bit-identical delivery
    /// times and identical per-link statistics.
    #[test]
    fn fabric_replays_bit_identically(
        kind in arb_kind(),
        messages in arb_messages(6),
    ) {
        let run = || {
            let mut fabric = build(kind, 6);
            for &(from, to, bytes) in &messages {
                fabric.inject(from, to, bytes).expect("endpoints in range");
            }
            let d: Vec<(u64, u64)> = fabric
                .run_until_idle(0.5)
                .expect("positive tick")
                .iter()
                .map(|d| (d.id, d.delivered_us.to_bits()))
                .collect();
            (d, fabric.stats().clone())
        };
        prop_assert_eq!(run(), run());
    }

    /// Convergence to the analytic oracle: on single-bottleneck flow sets
    /// (every flow leaves the node port), the fully-connected fabric and
    /// the analytic `Switch` agree within tolerance for random sizes and
    /// fan-outs.
    #[test]
    fn fully_connected_converges_to_analytic_switch(
        gpus in 1usize..8,
        bytes in (1u64 << 20)..(1 << 26),
    ) {
        let link = Link::nvlink2_x6();
        let switch = Switch::new(gpus + 1, link.clone()).expect("nonzero ports");
        let flows: Vec<Flow> = (0..gpus)
            .map(|g| Flow { from: 0, to: g + 1, bytes })
            .collect();
        let analytic = switch
            .concurrent_transfer_us(&flows)
            .expect("ports in range")
            .into_iter()
            .fold(0.0f64, f64::max);

        let mut fabric = build(TopologyKind::FullyConnected, gpus + 1);
        for g in 0..gpus {
            fabric.inject(0, g + 1, bytes).expect("endpoints in range");
        }
        let tick = analytic / 4096.0;
        let measured = fabric
            .run_until_idle(tick)
            .expect("positive tick")
            .into_iter()
            .map(|d| d.delivered_us)
            .fold(0.0f64, f64::max);
        let err = (measured - analytic).abs() / analytic;
        prop_assert!(
            err < 0.10,
            "fabric {} vs switch {} ({:.3})",
            measured,
            analytic,
            err
        );
    }
}

/// The fabric-backed serving path keeps the repo-wide worker-count
/// invariance: an offered-load sweep priced through the measured fabric is
/// bit-identical at 1, 2 and 4 workers.
#[test]
fn fabric_backed_sweep_invariant_across_worker_counts() {
    let model = SystemModel::paper_defaults();
    let workload = Workload::by_name(WorkloadName::Facebook);
    let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(16, 200.0))
        .with_transfer(TransferBackend::Fabric(TopologyKind::FullyConnected));
    let rates = [40_000.0, 120_000.0, 360_000.0];
    let baseline =
        offered_load_sweep_par(&model, &workload, &cfg, &rates, 120, 17, 1).expect("valid sweep");
    for workers in [2usize, 4] {
        let par = offered_load_sweep_par(&model, &workload, &cfg, &rates, 120, 17, workers)
            .expect("valid sweep");
        assert_eq!(baseline, par, "workers={workers}");
    }
}
