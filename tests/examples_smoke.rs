//! Workspace smoke test: the documented quickstart flow must keep working.
//!
//! `cargo test` also compiles everything under `examples/`, so together
//! with this test the documented entry points cannot silently rot. CI
//! additionally runs `examples/quickstart.rs` itself (release mode) — this
//! test mirrors its exact operation sequence on the small 4-DIMM node so
//! the flow is exercised on every `cargo test -q`, not just in CI.

use tensordimm::core::{ReduceOp, TensorNode, TensorNodeConfig};
use tensordimm::interconnect::Link;

#[test]
fn quickstart_flow_runs_to_completion() {
    let mut node = TensorNode::new(TensorNodeConfig::small()).expect("small config is valid");
    assert_eq!(node.dimms(), 4);
    assert!(node.peak_gbps() > 0.0);
    assert!(node.power_watts() > 0.0);

    let users = node
        .create_table("users", 1000, 64)
        .expect("fits the small pool");
    node.fill_table(&users, |row, col| (row as f32).sin() + col as f32 * 1e-3)
        .expect("table was just created");
    assert_eq!(users.rows(), 1000);
    assert_eq!(users.dim(), 64);

    let indices: Vec<u64> = (0..64u64).map(|i| (i * 37) % 1000).collect();
    let gathered = node.gather(&users, &indices).expect("indices in range");
    let report = node.last_report().expect("an op just ran");
    assert!(report.exec.blocks_read + report.exec.blocks_written > 0);

    let pooled = node.average(&gathered, 8).expect("64 is divisible by 8");
    let combined = node
        .reduce(&pooled, &pooled, ReduceOp::Add)
        .expect("shapes match");

    let transfer = node.copy_to_gpu(&combined, &Link::nvlink2_x6());
    assert!(transfer.bytes > 0);
    assert!(transfer.time_us > 0.0);

    let host = node.read_tensor(&combined).expect("tensor is live");
    assert_eq!(host.len(), combined.count() as usize * combined.dim());
    // REDUCE(Add) of the pooled tensor with itself doubles every element.
    let expected0 = {
        let pooled_host = node.read_tensor(&pooled).expect("tensor is live");
        2.0 * pooled_host[0]
    };
    assert!((host[0] - expected0).abs() < 1e-5);
}
