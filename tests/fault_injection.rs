//! Property tests for the deterministic fault-injection layer: schedules
//! are pure functions of `(plan, horizon)`, thinning makes downtime nest
//! across fault rates, fault-enabled simulations replay bit-identically,
//! backoff never exceeds its cap, hedged duplicates complete exactly once,
//! and the typed outcome accounting conserves requests under arbitrary
//! plan/policy combinations.
//!
//! Exercises the `tensordimm::faults` facade path alongside the
//! `tensordimm::serving` re-exports used by the simulator.

use proptest::prelude::*;

use tensordimm::faults::{FaultPlan, GrayRank, NodeOutage, RowFaults};
use tensordimm::models::{Workload, WorkloadName};
use tensordimm::serving::{
    simulate, AdmissionPolicy, ArrivalProcess, BatchPolicy, RequestOutcome, RetryPolicy, SimConfig,
};
use tensordimm::system::{DesignPoint, SystemModel};

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(WorkloadName::Ncf),
        Just(WorkloadName::YouTube),
        Just(WorkloadName::Fox),
        Just(WorkloadName::Facebook),
    ]
    .prop_map(Workload::by_name)
}

fn arb_design() -> impl Strategy<Value = DesignPoint> {
    prop_oneof![Just(DesignPoint::Tdimm), Just(DesignPoint::Pmem)]
}

fn arb_outage() -> impl Strategy<Value = Option<NodeOutage>> {
    prop_oneof![
        Just(None),
        (0.0f64..5_000.0, 100.0f64..3_000.0).prop_map(|(start_us, duration_us)| {
            Some(NodeOutage {
                start_us,
                duration_us,
            })
        }),
    ]
}

fn arb_gray() -> impl Strategy<Value = Option<GrayRank>> {
    prop_oneof![
        Just(None),
        (0.0f64..5_000.0, 100.0f64..3_000.0, 1.0f64..8.0).prop_map(
            |(start_us, duration_us, latency_multiplier)| {
                Some(GrayRank {
                    start_us,
                    duration_us,
                    latency_multiplier,
                })
            }
        ),
    ]
}

fn arb_row_faults() -> impl Strategy<Value = Option<RowFaults>> {
    prop_oneof![
        Just(None),
        (200.0f64..2_000.0, 1u64..512)
            .prop_map(|(every_us, rows)| Some(RowFaults { every_us, rows })),
    ]
}

/// A random but always-valid fault plan: seeded DIMM faults at any rate,
/// each optional failure mode flipped on independently.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..u64::MAX,
        0.0f64..1.0,
        1u64..8,
        100.0f64..2_000.0,
        500.0f64..8_000.0,
        arb_outage(),
        arb_gray(),
        arb_row_faults(),
    )
        .prop_map(|(seed, rate, dimms, gap, repair, outage, gray, rows)| {
            let mut plan = FaultPlan::dimm_faults(seed, rate);
            plan.dimms = dimms;
            plan.dimm_candidate_gap_us = gap;
            plan.dimm_repair_us = repair;
            plan.node_outage = outage;
            plan.gray = gray;
            plan.row_faults = rows;
            plan
        })
}

/// A random degraded-mode policy pair (possibly inert on either axis).
fn arb_policies() -> impl Strategy<Value = (RetryPolicy, AdmissionPolicy)> {
    (
        prop_oneof![Just(f64::INFINITY), 500.0f64..10_000.0],
        0u32..4,
        50.0f64..500.0,
        prop_oneof![Just(f64::INFINITY), 200.0f64..5_000.0],
        prop_oneof![Just(usize::MAX), 4usize..64],
    )
        .prop_map(
            |(deadline, max_retries, base, hedge, depth): (f64, u32, f64, f64, usize)| {
                let mut retry = RetryPolicy::none();
                if deadline.is_finite() {
                    retry = retry.with_deadline(deadline);
                }
                if max_retries > 0 {
                    retry = retry.with_retries(max_retries, base, base * 16.0);
                }
                if hedge.is_finite() {
                    retry = retry.with_hedging(hedge);
                }
                let admission = if depth == usize::MAX {
                    AdmissionPolicy::unbounded()
                } else {
                    AdmissionPolicy::bounded(depth)
                };
                (retry, admission)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `FaultPlan::schedule` is a pure function of `(plan, horizon)`:
    /// regenerating yields the identical event list, timestamps compared
    /// bit-for-bit.
    #[test]
    fn schedule_is_a_pure_function_of_plan_and_horizon(
        plan in arb_plan(),
        horizon_us in 0.0f64..50_000.0,
    ) {
        let a = plan.schedule(horizon_us).expect("valid plan");
        let b = plan.schedule(horizon_us).expect("valid plan");
        prop_assert_eq!(a.events().len(), b.events().len());
        prop_assert_eq!(&a, &b);
        for (ea, eb) in a.events().iter().zip(b.events()) {
            prop_assert_eq!(ea.at_us().to_bits(), eb.at_us().to_bits());
        }
    }

    /// Thinning draws candidate failures from a rate-independent stream,
    /// so the accepted failure set *nests* across rates: DIMM downtime is
    /// monotone non-decreasing in the fault rate for any seed/geometry.
    #[test]
    fn dimm_downtime_is_monotone_in_fault_rate(
        seed in 0u64..u64::MAX,
        rate_a in 0.0f64..1.0,
        rate_b in 0.0f64..1.0,
        dimms in 1u64..8,
        gap in 100.0f64..1_000.0,
        horizon_us in 5_000.0f64..40_000.0,
    ) {
        let (lo, hi) = if rate_a <= rate_b { (rate_a, rate_b) } else { (rate_b, rate_a) };
        let mut base = FaultPlan::dimm_faults(seed, lo);
        base.dimms = dimms;
        base.dimm_candidate_gap_us = gap;
        let mut harsher = base;
        harsher.dimm_fault_rate = hi;
        let down_lo = base.schedule(horizon_us).expect("valid").dimm_downtime_us(horizon_us);
        let down_hi = harsher.schedule(horizon_us).expect("valid").dimm_downtime_us(horizon_us);
        prop_assert!(
            down_lo <= down_hi + 1e-9,
            "downtime fell from {} to {} as rate rose {} -> {}",
            down_lo, down_hi, lo, hi
        );
    }

    /// `RetryPolicy::backoff_us` never exceeds the cap — jitter included —
    /// stays strictly positive, and is a pure function of
    /// `(jitter_seed, id, attempt)`.
    #[test]
    fn backoff_is_capped_positive_and_pure(
        base_us in 1.0f64..2_000.0,
        cap_mult in 1.0f64..64.0,
        jitter_frac in 0.0f64..1.0,
        jitter_seed in 0u64..u64::MAX,
        id in 0usize..1_000_000,
        attempt in 0u32..100,
    ) {
        let cap_us = base_us * cap_mult;
        let mut policy = RetryPolicy::none().with_retries(8, base_us, cap_us);
        policy.jitter_frac = jitter_frac;
        policy.jitter_seed = jitter_seed;
        policy.validate().expect("valid knobs");
        let d = policy.backoff_us(id, attempt);
        prop_assert!(d > 0.0, "backoff must be positive, got {}", d);
        prop_assert!(
            d <= cap_us,
            "backoff {} exceeds cap {} (base {}, jitter {})",
            d, cap_us, base_us, jitter_frac
        );
        prop_assert_eq!(d.to_bits(), policy.backoff_us(id, attempt).to_bits());
    }
}

proptest! {
    // Full simulations per case: fewer cases, each driving ~200 requests
    // through random fault plans and policies.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same `(config, trace)` in, bit-identical `SimReport` out — records
    /// included — no matter how harsh the fault plan or policies.
    #[test]
    fn fault_enabled_simulation_replays_bit_identically(
        workload in arb_workload(),
        design in arb_design(),
        plan in arb_plan(),
        policies in arb_policies(),
        rate_qps in 50_000.0f64..500_000.0,
        seed in 0u64..500,
    ) {
        let (retry, admission) = policies;
        let model = SystemModel::paper_defaults();
        let cfg = SimConfig::new(design, 4, BatchPolicy::new(16, 250.0))
            .with_faults(plan)
            .with_retry(retry)
            .with_admission(admission);
        let arrivals = ArrivalProcess::Poisson { rate_qps }.sample_arrivals_us(200, seed);
        let a = simulate(&model, &workload, &cfg, &arrivals).expect("valid");
        let b = simulate(&model, &workload, &cfg, &arrivals).expect("valid");
        prop_assert_eq!(a.latency.p99_us.to_bits(), b.latency.p99_us.to_bits());
        prop_assert_eq!(a.goodput_qps.to_bits(), b.goodput_qps.to_bits());
        prop_assert_eq!(&a, &b);
    }

    /// Conservation and single-completion accounting under arbitrary fault
    /// plans and policies: every arrived request lands in exactly one typed
    /// outcome bucket, the per-record outcomes agree with the counters, and
    /// hedged duplicates never double-complete (`latency.count`, the
    /// `completed` counter and the `Completed` records all agree even when
    /// hedge dispatches fired).
    #[test]
    fn outcomes_conserve_requests_and_hedges_complete_once(
        workload in arb_workload(),
        design in arb_design(),
        plan in arb_plan(),
        policies in arb_policies(),
        rate_qps in 50_000.0f64..500_000.0,
        seed in 0u64..500,
    ) {
        let (retry, admission) = policies;
        let model = SystemModel::paper_defaults();
        // Force hedging on so duplicate dispatches actually happen.
        let retry = retry.with_hedging(retry.hedge_after_us.min(600.0));
        let cfg = SimConfig::new(design, 4, BatchPolicy::new(16, 250.0))
            .with_faults(plan)
            .with_retry(retry)
            .with_admission(admission);
        let arrivals = ArrivalProcess::Poisson { rate_qps }.sample_arrivals_us(200, seed);
        let report = simulate(&model, &workload, &cfg, &arrivals).expect("valid");

        prop_assert!(report.is_conserved());
        prop_assert_eq!(report.outcomes.total(), report.arrived);
        prop_assert!(report.completed <= report.arrived);
        prop_assert_eq!(report.outcomes.completed, report.completed);
        prop_assert_eq!(report.latency.count, report.completed);

        let by_outcome = |want: RequestOutcome| {
            report.records.iter().filter(|r| r.outcome == Some(want)).count()
        };
        prop_assert_eq!(by_outcome(RequestOutcome::Completed), report.outcomes.completed);
        prop_assert_eq!(by_outcome(RequestOutcome::Shed), report.outcomes.shed);
        prop_assert_eq!(by_outcome(RequestOutcome::TimedOut), report.outcomes.timed_out);
        prop_assert_eq!(
            by_outcome(RequestOutcome::InFlightAtHorizon),
            report.outcomes.in_flight_at_horizon
        );
        // A completion record exists iff the outcome says completed.
        for r in &report.records {
            prop_assert_eq!(
                r.completion.is_some(),
                r.outcome == Some(RequestOutcome::Completed)
            );
        }
    }
}

/// Pinned regressions for explicit rank-outage windows (the newest
/// failure mode): validation rejects the degenerate plans that used to
/// slip through — zero-length repair windows and overlapping outages on
/// the same rank — and a valid explicit outage degrades a run exactly as
/// its merged schedule says, deterministically.
#[test]
fn rank_outage_validation_and_injection_pins() {
    use tensordimm::faults::{FaultError, RankOutage};

    let reject = |plan: FaultPlan, parameter: &'static str| {
        assert_eq!(
            plan.validate(),
            Err(FaultError::InvalidPlan { parameter }),
            "{parameter}"
        );
    };
    // Zero-length (and negative) repair windows are meaningless.
    reject(
        FaultPlan::none().with_rank_outage(RankOutage {
            rank: 0,
            start_us: 100.0,
            duration_us: 0.0,
        }),
        "rank_outages.duration_us",
    );
    // Overlapping windows on one rank would double-count the rank as a
    // bitmask; two Downs with one Restored is not a schedule.
    let overlapping = FaultPlan::none()
        .with_rank_outage(RankOutage {
            rank: 1,
            start_us: 100.0,
            duration_us: 500.0,
        })
        .with_rank_outage(RankOutage {
            rank: 1,
            start_us: 300.0,
            duration_us: 100.0,
        });
    reject(overlapping, "rank_outages.overlap");
    // The same two windows on different ranks are fine.
    let disjoint_ranks = FaultPlan::none()
        .with_rank_outage(RankOutage {
            rank: 1,
            start_us: 100.0,
            duration_us: 500.0,
        })
        .with_rank_outage(RankOutage {
            rank: 2,
            start_us: 300.0,
            duration_us: 100.0,
        });
    assert_eq!(disjoint_ranks.validate(), Ok(()));

    // Injection: a mid-trace rank outage on a 2-DIMM node halves gather
    // bandwidth inside the window, so the run is strictly slower than the
    // healthy one and bit-identical on replay.
    let mut plan = FaultPlan::none().with_rank_outage(RankOutage {
        rank: 0,
        start_us: 200.0,
        duration_us: 1_500.0,
    });
    plan.dimms = 2;
    let model = SystemModel::paper_defaults();
    let w = Workload::by_name(WorkloadName::Facebook);
    let cfg = SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(16, 200.0));
    let arrivals = ArrivalProcess::Poisson {
        rate_qps: 400_000.0,
    }
    .sample_arrivals_us(300, 11);
    let healthy = simulate(&model, &w, &cfg, &arrivals).expect("valid");
    let degraded = simulate(&model, &w, &cfg.with_faults(plan), &arrivals).expect("valid");
    let replay = simulate(&model, &w, &cfg.with_faults(plan), &arrivals).expect("valid");
    assert_eq!(
        degraded, replay,
        "fault-enabled runs replay bit-identically"
    );
    assert!(degraded.is_conserved());
    assert!(
        degraded.latency.p99_us > healthy.latency.p99_us,
        "losing a rank mid-trace must show in the tail ({} vs {})",
        degraded.latency.p99_us,
        healthy.latency.p99_us
    );
}
