//! Property-based tests over the request-level serving simulator:
//! virtual-time sanity, flow conservation, determinism, tail ordering and
//! throughput bounds, across randomized workloads, fleet sizes, batching
//! policies, arrival processes and offered loads.

use proptest::prelude::*;

use tensordimm::models::{Workload, WorkloadName};
use tensordimm::serving::{
    simulate, AdmissionPolicy, ArrivalProcess, BatchPolicy, RequestOutcome, RetryPolicy, SimConfig,
};
use tensordimm::system::{DesignPoint, SystemModel};

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(WorkloadName::Ncf),
        Just(WorkloadName::YouTube),
        Just(WorkloadName::Fox),
        Just(WorkloadName::Facebook),
    ]
    .prop_map(Workload::by_name)
}

fn arb_design() -> impl Strategy<Value = DesignPoint> {
    prop_oneof![
        Just(DesignPoint::Tdimm),
        Just(DesignPoint::Pmem),
        Just(DesignPoint::GpuOnly),
    ]
}

fn arb_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (5_000.0f64..2_000_000.0).prop_map(|rate_qps| ArrivalProcess::Poisson { rate_qps }),
        ((5_000.0f64..2_000_000.0), (1.0f64..24.0)).prop_map(|(rate_qps, mean_burst)| {
            ArrivalProcess::Bursty {
                rate_qps,
                mean_burst,
            }
        }),
    ]
}

fn arb_policy() -> impl Strategy<Value = BatchPolicy> {
    ((1usize..64), (0.0f64..2_000.0)).prop_map(|(max_batch, max_wait_us)| BatchPolicy {
        max_batch,
        max_wait_us,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Virtual time only moves forward: every request is dispatched no
    /// earlier than it arrived and finishes strictly after dispatch, and
    /// per GPU the service intervals never overlap.
    #[test]
    fn virtual_time_is_monotone(
        workload in arb_workload(),
        design in arb_design(),
        process in arb_process(),
        policy in arb_policy(),
        gpus in 1usize..9,
        n in 50usize..300,
        seed in 0u64..1000,
    ) {
        let model = SystemModel::paper_defaults();
        let cfg = SimConfig::new(design, gpus, policy);
        let arrivals = process.sample_arrivals_us(n, seed);
        let report = simulate(&model, &workload, &cfg, &arrivals).expect("valid inputs");
        let mut per_gpu: Vec<Vec<(f64, f64)>> = vec![Vec::new(); gpus];
        for rec in &report.records {
            let c = rec.completion.expect("no horizon: everything completes");
            prop_assert!(c.dispatch_us >= rec.arrival_us - 1e-6);
            prop_assert!(c.finish_us > c.dispatch_us);
            prop_assert!(c.finish_us <= report.end_us + 1e-6);
            per_gpu[c.gpu].push((c.dispatch_us, c.finish_us));
        }
        for intervals in &mut per_gpu {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            intervals.dedup();
            for w in intervals.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].1 - 1e-6,
                    "GPU served two batches at once: {:?} then {:?}", w[0], w[1]
                );
            }
        }
    }

    /// Requests in = completed + queued + in flight + not yet arrived,
    /// with and without a horizon cutting the run short.
    #[test]
    fn requests_are_conserved(
        workload in arb_workload(),
        design in arb_design(),
        process in arb_process(),
        policy in arb_policy(),
        gpus in 1usize..9,
        n in 50usize..300,
        seed in 0u64..1000,
        horizon_frac in 0.0f64..1.5,
    ) {
        let model = SystemModel::paper_defaults();
        let arrivals = process.sample_arrivals_us(n, seed);
        let full = SimConfig::new(design, gpus, policy);
        let report = simulate(&model, &workload, &full, &arrivals).expect("valid inputs");
        prop_assert!(report.is_conserved());
        prop_assert_eq!(report.completed, n, "no horizon: everything drains");
        prop_assert_eq!(report.queued + report.in_flight, 0);

        // A horizon somewhere inside (or past) the run must still account
        // for every request exactly once.
        let horizon = report.end_us * horizon_frac;
        let cut = simulate(&model, &workload, &full.with_horizon(horizon), &arrivals)
            .expect("valid inputs");
        prop_assert!(
            cut.is_conserved(),
            "offered {} != completed {} + in_flight {} + queued {} + not_arrived {}",
            cut.offered, cut.completed, cut.in_flight, cut.queued, cut.not_arrived()
        );
        prop_assert!(cut.completed <= report.completed);
    }

    /// Bit-identical replay under a fixed seed, and a different arrival
    /// seed genuinely changes the trace.
    #[test]
    fn fixed_seed_is_deterministic(
        workload in arb_workload(),
        design in arb_design(),
        process in arb_process(),
        policy in arb_policy(),
        gpus in 1usize..9,
        seed in 0u64..1000,
    ) {
        let model = SystemModel::paper_defaults();
        let cfg = SimConfig::new(design, gpus, policy);
        let arrivals = process.sample_arrivals_us(120, seed);
        let a = simulate(&model, &workload, &cfg, &arrivals).expect("valid inputs");
        let b = simulate(&model, &workload, &cfg, &arrivals).expect("valid inputs");
        prop_assert_eq!(a, b);
        prop_assert_ne!(
            process.sample_arrivals_us(120, seed),
            process.sample_arrivals_us(120, seed + 1)
        );
    }

    /// Tail ordering: p50 <= p95 <= p99 <= max, and every percentile is a
    /// latency some request actually saw.
    #[test]
    fn percentiles_are_ordered(
        workload in arb_workload(),
        design in arb_design(),
        process in arb_process(),
        policy in arb_policy(),
        gpus in 1usize..9,
        n in 50usize..300,
        seed in 0u64..1000,
    ) {
        let model = SystemModel::paper_defaults();
        let cfg = SimConfig::new(design, gpus, policy);
        let arrivals = process.sample_arrivals_us(n, seed);
        let r = simulate(&model, &workload, &cfg, &arrivals).expect("valid inputs");
        let l = &r.latency;
        prop_assert!(l.p50_us <= l.p95_us);
        prop_assert!(l.p95_us <= l.p99_us);
        prop_assert!(l.p99_us <= l.max_us);
        prop_assert!(l.p50_us > 0.0);
        let latencies: Vec<f64> = r
            .records
            .iter()
            .filter_map(|rec| rec.latency_us())
            .collect();
        for p in [l.p50_us, l.p95_us, l.p99_us, l.max_us] {
            prop_assert!(
                latencies.iter().any(|&x| (x - p).abs() < 1e-9),
                "percentile {p} is not an observed latency"
            );
        }
    }

    /// The system never completes work faster than it was offered: with at
    /// least two arrivals, delivered throughput cannot exceed the realized
    /// offered rate (completions can't outpace the open loop feeding them).
    #[test]
    fn throughput_bounded_by_offered_load(
        workload in arb_workload(),
        design in arb_design(),
        process in arb_process(),
        policy in arb_policy(),
        gpus in 1usize..9,
        n in 50usize..300,
        seed in 0u64..1000,
    ) {
        let model = SystemModel::paper_defaults();
        let cfg = SimConfig::new(design, gpus, policy);
        let arrivals = process.sample_arrivals_us(n, seed);
        let span_us = arrivals[arrivals.len() - 1] - arrivals[0];
        prop_assume!(span_us > 1.0);
        let r = simulate(&model, &workload, &cfg, &arrivals).expect("valid inputs");
        let offered_qps = n as f64 / (span_us * 1e-6);
        prop_assert!(
            r.throughput_qps <= offered_qps * (1.0 + 1e-9),
            "delivered {:.0} qps exceeds offered {:.0} qps",
            r.throughput_qps,
            offered_qps
        );
        // Batch occupancy never exceeds the policy.
        for rec in &r.records {
            let c = rec.completion.expect("drained");
            prop_assert!(c.batch_size >= 1 && c.batch_size <= policy.max_batch);
        }
    }

    /// `OutcomeCounts::is_conserved` when every degraded-mode mechanism is
    /// armed at once: a tight bounded queue (sheds), retries with backoff
    /// (re-admissions) and hedged duplicates (extra dispatches), under
    /// overload. However the mechanisms interleave, every arrived request
    /// still lands in exactly one typed bucket.
    #[test]
    fn conservation_when_shed_retries_and_hedges_interact(
        workload in arb_workload(),
        design in arb_design(),
        depth in 4usize..24,
        deadline_us in 1_000.0f64..5_000.0,
        hedge_after_us in 200.0f64..800.0,
        rate_qps in 300_000.0f64..900_000.0,
        seed in 0u64..1000,
    ) {
        let model = SystemModel::paper_defaults();
        let retry = RetryPolicy::none()
            .with_deadline(deadline_us)
            .with_retries(3, 100.0, 1_500.0)
            .with_hedging(hedge_after_us);
        let cfg = SimConfig::new(design, 2, BatchPolicy::new(8, 150.0))
            .with_retry(retry)
            .with_admission(AdmissionPolicy::bounded(depth));
        let arrivals = ArrivalProcess::Poisson { rate_qps }.sample_arrivals_us(250, seed);
        let r = simulate(&model, &workload, &cfg, &arrivals).expect("valid inputs");
        prop_assert!(
            r.is_conserved(),
            "outcomes {:?} must sum to arrived {} (retries and hedges in play)",
            r.outcomes, r.arrived
        );
        prop_assert!(r.outcomes.is_conserved(r.arrived));
        prop_assert_eq!(r.outcomes.completed, r.completed);
        prop_assert_eq!(r.latency.count, r.completed);
        // Retried requests still resolve exactly once.
        let retried = r.records.iter().filter(|rec| rec.retries > 0).count();
        prop_assert!(retried <= r.arrived);
    }
}

/// Pinned overload point where shedding, retries and hedging demonstrably
/// all fire in one run — the conservation law holds with every mechanism
/// active simultaneously, not just in isolation.
#[test]
fn all_three_degraded_mechanisms_fire_and_conserve() {
    let model = SystemModel::paper_defaults();
    let w = Workload::facebook();
    let retry = RetryPolicy::none()
        .with_deadline(2_500.0)
        .with_retries(3, 100.0, 1_000.0)
        .with_hedging(400.0);
    // Bursty arrivals + a gray rank are what make all three fire at
    // once: a burst overflows the bounded queue (sheds) and strands
    // requests past their backoff deadline (retries), the gray window
    // multiplies service times past the hedge threshold, and the gap
    // after a burst leaves a GPU idle for the hedge to land on.
    let gray = {
        let mut plan = tensordimm::faults::FaultPlan::none();
        plan.gray = Some(tensordimm::faults::GrayRank {
            start_us: 0.0,
            duration_us: 1.0e7,
            latency_multiplier: 6.0,
        });
        plan
    };
    let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(8, 150.0))
        .with_retry(retry)
        .with_admission(AdmissionPolicy::bounded(8))
        .with_faults(gray);
    let arrivals = ArrivalProcess::Bursty {
        rate_qps: 450_000.0,
        mean_burst: 16.0,
    }
    .sample_arrivals_us(400, 7);
    let r = simulate(&model, &w, &cfg, &arrivals).expect("valid inputs");
    assert!(
        r.outcomes.shed > 0,
        "the bounded queue must shed: {:?}",
        r.outcomes
    );
    assert!(
        r.records.iter().any(|rec| rec.retries > 0),
        "backoff retries must fire"
    );
    assert!(r.hedge_dispatches > 0, "hedged duplicates must dispatch");
    assert!(r.is_conserved());
    assert!(r.outcomes.is_conserved(r.arrived));
    assert_eq!(r.outcomes.completed, r.completed);
    let by = |want: RequestOutcome| {
        r.records
            .iter()
            .filter(|rec| rec.outcome == Some(want))
            .count()
    };
    assert_eq!(by(RequestOutcome::Completed), r.outcomes.completed);
    assert_eq!(by(RequestOutcome::Shed), r.outcomes.shed);
    assert_eq!(by(RequestOutcome::TimedOut), r.outcomes.timed_out);
}
