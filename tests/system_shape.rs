//! Integration: the end-to-end system model reproduces the *shapes* of the
//! paper's evaluation — who wins, by roughly what factor, and where the
//! crossovers fall.

use tensordimm::interconnect::{Link, Topology};
use tensordimm::models::Workload;
use tensordimm::system::{geometric_mean, speedup_matrix, DesignPoint, SystemModel};

const FIG14_BATCHES: [usize; 3] = [8, 64, 128];

#[test]
fn fig14_tdimm_close_to_oracle_everywhere() {
    let model = SystemModel::paper_defaults();
    let mut fracs = Vec::new();
    for w in Workload::all() {
        for &b in &FIG14_BATCHES {
            let frac = model.normalized(&w, b, DesignPoint::Tdimm);
            // Paper: TDIMM averages 84% of the oracle and never drops
            // below 75%.
            assert!(
                frac > 0.7,
                "{} batch {b}: TDIMM at {frac:.2} of oracle",
                w.name
            );
            fracs.push(frac);
        }
    }
    let avg = geometric_mean(&fracs);
    assert!((0.75..0.95).contains(&avg), "average fraction {avg:.2}");
}

#[test]
fn fig14_design_ordering_at_batch_64() {
    let model = SystemModel::paper_defaults();
    for w in Workload::all() {
        let t = |d| model.evaluate(&w, 64, d).total_us();
        assert!(
            t(DesignPoint::GpuOnly) <= t(DesignPoint::Tdimm) * 1.001,
            "{}",
            w.name
        );
        assert!(
            t(DesignPoint::Tdimm) <= t(DesignPoint::Pmem) * 1.02,
            "{}",
            w.name
        );
        assert!(t(DesignPoint::Pmem) < t(DesignPoint::CpuGpu), "{}", w.name);
    }
}

#[test]
fn fig4_low_batch_crossover() {
    // At batch 1 the hybrid's PCIe copy + GPU under-occupancy lose to
    // staying on the CPU; at batch 128 the CPU's FLOP deficit dominates.
    let model = SystemModel::paper_defaults();
    let mut crossover_workloads = 0;
    for w in Workload::all() {
        let cpu1 = model.evaluate(&w, 1, DesignPoint::CpuOnly).total_us();
        let hyb1 = model.evaluate(&w, 1, DesignPoint::CpuGpu).total_us();
        if cpu1 < hyb1 {
            crossover_workloads += 1;
        }
        let cpu128 = model.evaluate(&w, 128, DesignPoint::CpuOnly).total_us();
        let hyb128 = model.evaluate(&w, 128, DesignPoint::CpuGpu).total_us();
        // At large batch the GPU-backed design wins where the DNN (not the
        // PCIe copy) dominates — i.e. small pooling factors like NCF's.
        // Pooling-heavy workloads (YouTube/Fox/Facebook) keep CPU-only
        // competitive at every batch, exactly as in the paper's Fig. 4.
        if w.lookups_per_table <= 2 {
            assert!(
                hyb128 < cpu128,
                "{}: hybrid should win at batch 128",
                w.name
            );
        }
    }
    assert!(
        crossover_workloads >= 3,
        "only {crossover_workloads}/4 workloads show the batch-1 crossover"
    );
}

#[test]
fn fig15_speedups_grow_with_embedding_scale() {
    let model = SystemModel::paper_defaults();
    let rows = speedup_matrix(&model, &Workload::all(), &[1, 2, 4, 8], &[64]);
    let per_scale: Vec<(f64, f64)> = rows.iter().map(|&(_, _, c, h)| (c, h)).collect();
    for pair in per_scale.windows(2) {
        assert!(
            pair[1].0 > pair[0].0,
            "vs CPU-only not monotone: {per_scale:?}"
        );
        assert!(
            pair[1].1 > pair[0].1,
            "vs CPU-GPU not monotone: {per_scale:?}"
        );
    }
    // Paper band at 1x: 6.2x / 8.9x.
    let (c1, h1) = per_scale[0];
    assert!((3.0..12.0).contains(&c1), "1x vs CPU-only {c1:.1}");
    assert!((5.0..16.0).contains(&h1), "1x vs CPU-GPU {h1:.1}");
}

#[test]
fn fig16_pmem_is_far_more_link_sensitive_than_tdimm() {
    let slow_link =
        Topology::dgx_like(8).with_gpu_link(Link::nvlink_class(25.0).expect("positive bandwidth"));
    let slow = SystemModel::paper_defaults().with_topology(slow_link);
    let fast = SystemModel::paper_defaults();
    let mut pmem_losses = Vec::new();
    let mut tdimm_losses = Vec::new();
    for w in Workload::all() {
        let loss = |design| {
            let f = fast.evaluate(&w, 64, design).total_us();
            let s = slow.evaluate(&w, 64, design).total_us();
            1.0 - f / s
        };
        pmem_losses.push(loss(DesignPoint::Pmem));
        tdimm_losses.push(loss(DesignPoint::Tdimm));
    }
    let pmem = geometric_mean(&pmem_losses.iter().map(|l| 1.0 - l).collect::<Vec<_>>());
    let tdimm = geometric_mean(&tdimm_losses.iter().map(|l| 1.0 - l).collect::<Vec<_>>());
    // Paper: PMEM loses up to 68%; TDIMM at most ~15%.
    assert!(pmem < 0.6, "PMEM retained {pmem:.2} on a 6x thinner link");
    assert!(tdimm > 0.7, "TDIMM retained only {tdimm:.2}");
}

#[test]
fn fig3_embeddings_dominate_model_growth() {
    use tensordimm::embedding::footprint::ncf_footprint;
    let base = ncf_footprint(5_000_000, 5_000_000, 64, 64);
    let wide_mlp = ncf_footprint(5_000_000, 5_000_000, 64, 8192);
    let wide_emb = ncf_footprint(5_000_000, 5_000_000, 8192, 64);
    let mlp_growth = wide_mlp.total_bytes() as f64 / base.total_bytes() as f64;
    let emb_growth = wide_emb.total_bytes() as f64 / base.total_bytes() as f64;
    assert!(emb_growth > 20.0 * mlp_growth);
    // And the absolute sizes overflow any GPU's memory.
    assert!(wide_emb.total_bytes() > 600 << 30);
}
