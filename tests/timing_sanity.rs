//! Integration: timing numbers produced by the simulation stack are
//! physically sane and move in the right directions.

use tensordimm::core::{ReduceOp, TensorNode, TensorNodeConfig, TimingMode};
use tensordimm::isa::{DimmContext, Instruction};
use tensordimm::nmp::{NmpConfig, NmpCore};

#[test]
fn node_bandwidth_never_exceeds_peak() {
    let mut node =
        TensorNode::new(TensorNodeConfig::paper().with_pool_blocks(1 << 20)).expect("valid config");
    let t = node.create_table("t", 4096, 512).expect("fits");
    let idx: Vec<u64> = (0..512u64).map(|i| (i * 97) % 4096).collect();
    let g = node.gather(&t, &idx).expect("in range");
    let _ = node.average(&g, 8).expect("divisible");
    for report in node.reports() {
        let gbps = report.node_gbps().expect("replay timing on");
        assert!(gbps > 0.0);
        assert!(
            gbps <= node.peak_gbps() * 1.001,
            "{gbps} GB/s exceeds the node's physical {} GB/s",
            node.peak_gbps()
        );
    }
}

#[test]
fn pipeline_mode_is_not_faster_than_replay() {
    // The detailed pipeline adds SRAM-queue and ALU constraints on top of
    // the raw DRAM replay, so it can only be slower or equal.
    let reduce = Instruction::Reduce {
        input1: 0,
        input2: 1 << 20,
        output_base: 1 << 21,
        count: 32 * 2048,
        op: ReduceOp::Add,
    };
    let ctx = DimmContext::new(32, 0);
    let mut core = NmpCore::new(NmpConfig::paper()).expect("valid");
    let replay = core.replay_instruction(&reduce, ctx, None).expect("valid");
    let pipeline = core.run_instruction(&reduce, ctx, None).expect("valid");
    assert!(
        pipeline.cycles as f64 >= replay.cycles as f64 * 0.95,
        "pipeline {} cycles vs replay {}",
        pipeline.cycles,
        replay.cycles
    );
}

#[test]
fn more_dimms_means_higher_node_bandwidth() {
    let mut last = 0.0f64;
    for dimms in [4u64, 8, 16, 32] {
        let cfg = TensorNodeConfig::paper()
            .with_dimms(dimms)
            .with_pool_blocks(1 << 20);
        let mut node = TensorNode::new(cfg).expect("valid");
        let t = node.create_table("t", 2048, 512).expect("fits");
        let idx: Vec<u64> = (0..512u64).map(|i| (i * 61) % 2048).collect();
        let _ = node.gather(&t, &idx).expect("in range");
        let gbps = node
            .last_report()
            .and_then(|r| r.node_gbps())
            .expect("replay timing on");
        assert!(
            gbps > last,
            "{dimms} DIMMs: {gbps:.0} GB/s not above previous {last:.0}"
        );
        last = gbps;
    }
}

#[test]
fn functional_and_replay_modes_agree_on_values() {
    // Timing mode must not change functional results.
    let run = |timing| {
        let cfg = TensorNodeConfig::small().with_timing(timing);
        let mut node = TensorNode::new(cfg).expect("valid");
        let t = node.create_table("t", 128, 64).expect("fits");
        node.fill_table(&t, |r, c| (r * 7 + c as u64) as f32)
            .expect("valid");
        let g = node.gather(&t, &[1, 3, 5, 7]).expect("in range");
        let a = node.average(&g, 2).expect("divisible");
        node.read_tensor(&a).expect("readable")
    };
    assert_eq!(run(TimingMode::Functional), run(TimingMode::Replay));
    assert_eq!(run(TimingMode::Functional), run(TimingMode::Pipeline));
}

#[test]
fn gather_timing_scales_with_batch() {
    let cfg = TensorNodeConfig::paper().with_pool_blocks(1 << 20);
    let mut node = TensorNode::new(cfg).expect("valid");
    let t = node.create_table("t", 4096, 512).expect("fits");
    let small_idx: Vec<u64> = (0..64u64).collect();
    let large_idx: Vec<u64> = (0..1024u64).map(|i| i % 4096).collect();
    let _ = node.gather(&t, &small_idx).expect("in range");
    let small_ns = node.last_report().unwrap().elapsed_ns().unwrap();
    let _ = node.gather(&t, &large_idx).expect("in range");
    let large_ns = node.last_report().unwrap().elapsed_ns().unwrap();
    assert!(
        large_ns > 4.0 * small_ns,
        "16x the lookups only took {large_ns:.0} ns vs {small_ns:.0} ns"
    );
}
