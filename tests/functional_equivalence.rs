//! Integration: the near-memory execution path (TensorNode -> TensorISA
//! wire format -> broadcast per-DIMM execution) is bit-exact against the
//! golden single-threaded tensor ops, across node sizes and embedding
//! dimensions (including ones that need stripe padding).

use tensordimm::core::{ReduceOp, TensorNode, TensorNodeConfig, TimingMode};
use tensordimm::embedding::{ops, Distribution, EmbeddingTable, IndexStream};

fn node(dimms: u64) -> TensorNode {
    let cfg = TensorNodeConfig::paper()
        .with_dimms(dimms)
        .with_timing(TimingMode::Functional)
        .with_pool_blocks(1 << 18);
    TensorNode::new(cfg).expect("valid config")
}

fn check_workflow(dimms: u64, dim: usize, rows: u64, batch: usize, group: u64) {
    let golden_table = EmbeddingTable::seeded("t", rows, dim, dimms ^ dim as u64);
    let mut n = node(dimms);
    let handle = n.create_table("t", rows, dim).expect("fits pool");
    n.load_table(&handle, golden_table.data())
        .expect("shape matches");

    let mut stream = IndexStream::new(Distribution::Zipfian { s: 0.8 }, rows, 7);
    let indices = stream.batch(batch);

    // GATHER
    let gathered = n.gather(&handle, &indices).expect("indices in range");
    let golden_gathered = ops::gather(&golden_table, &indices).expect("in range");
    assert_eq!(
        n.read_tensor(&gathered).expect("readable"),
        golden_gathered,
        "gather mismatch: dimms={dimms} dim={dim}"
    );

    // AVERAGE
    if (batch as u64).is_multiple_of(group) {
        let pooled = n.average(&gathered, group).expect("divisible");
        let golden_pooled = ops::average(&golden_gathered, group as usize, dim).expect("divisible");
        let got = n.read_tensor(&pooled).expect("readable");
        assert_eq!(got.len(), golden_pooled.len());
        for (a, b) in got.iter().zip(&golden_pooled) {
            assert!((a - b).abs() <= 1e-6, "average mismatch {a} vs {b}");
        }
    }

    // REDUCE (all operators)
    for op in ReduceOp::all() {
        let reduced = n.reduce(&gathered, &gathered, op).expect("same shape");
        let golden_reduced =
            ops::reduce(&golden_gathered, &golden_gathered, op).expect("same shape");
        assert_eq!(
            n.read_tensor(&reduced).expect("readable"),
            golden_reduced,
            "reduce {op} mismatch: dimms={dimms} dim={dim}"
        );
    }
}

#[test]
fn single_dimm_node() {
    check_workflow(1, 64, 256, 16, 4);
}

#[test]
fn four_dimm_node() {
    check_workflow(4, 128, 512, 24, 6);
}

#[test]
fn paper_node_dim512() {
    check_workflow(32, 512, 256, 16, 4);
}

#[test]
fn padded_dimensions() {
    // dim 100 -> 400 B -> 7 blocks, padded to the DIMM stripe.
    check_workflow(4, 100, 128, 8, 2);
    check_workflow(32, 48, 64, 8, 2);
}

#[test]
fn repeated_and_duplicate_indices() {
    let mut n = node(8);
    let t = n.create_table("t", 32, 64).expect("fits");
    n.fill_table(&t, |r, _| r as f32).expect("valid");
    let g = n.gather(&t, &[5, 5, 5, 5]).expect("in range");
    let host = n.read_tensor(&g).expect("readable");
    assert!(host.chunks(64).all(|c| c[0] == 5.0));
}

#[test]
fn chained_ops_compose() {
    // gather -> average -> reduce chains preserve values end-to-end.
    let mut n = node(4);
    let t = n.create_table("t", 64, 32).expect("fits");
    n.fill_table(&t, |r, _| r as f32).expect("valid");
    let g = n.gather(&t, &[0, 2, 4, 6]).expect("in range");
    let avg = n.average(&g, 4).expect("divisible"); // (0+2+4+6)/4 = 3
    let doubled = n.reduce(&avg, &avg, ReduceOp::Add).expect("same shape");
    let host = n.read_tensor(&doubled).expect("readable");
    assert!(host.iter().all(|&v| v == 6.0), "{host:?}");
}

#[test]
fn embedding_layer_matches_golden_pipeline() {
    // The full Fig. 2 path (multi-table gather -> AVERAGE pool -> concat)
    // through the runtime equals the golden ops composed by hand.
    let dim = 32usize;
    let lookups = 4u64;
    let batch = 6usize;
    let rows = 64u64;
    let mut n = node(8);

    let golden_tables: Vec<EmbeddingTable> = (0..3)
        .map(|t| EmbeddingTable::seeded(&format!("t{t}"), rows, dim, t as u64))
        .collect();
    let mut handles = Vec::new();
    for (t, g) in golden_tables.iter().enumerate() {
        let h = n
            .create_table(&format!("t{t}"), rows, dim)
            .expect("fits pool");
        n.load_table(&h, g.data()).expect("shape matches");
        handles.push(h);
    }
    let mut stream = IndexStream::new(Distribution::Uniform, rows, 5);
    let indices: Vec<Vec<u64>> = (0..3)
        .map(|_| stream.batch(batch * lookups as usize))
        .collect();

    let features = n
        .embedding_layer(&handles, &indices, lookups)
        .expect("valid layer");
    let got = n.read_features(&features, 3).expect("divides");

    // Golden: per table gather + average, then per-sample concat.
    let mut want = vec![0.0f32; batch * 3 * dim];
    for (t, g) in golden_tables.iter().enumerate() {
        let gathered = ops::gather(g, &indices[t]).expect("in range");
        let pooled = ops::average(&gathered, lookups as usize, dim).expect("divides");
        for b in 0..batch {
            let dst = b * 3 * dim + t * dim;
            want[dst..dst + dim].copy_from_slice(&pooled[b * dim..(b + 1) * dim]);
        }
    }
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(&want) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }
}
