//! Property-based tests over the embedding substrate's golden operations.

use proptest::prelude::*;

use tensordimm::embedding::{ops, Distribution, EmbeddingTable, IndexStream};
use tensordimm::isa::ReduceOp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Gather preserves every selected row exactly.
    #[test]
    fn gather_selects_exact_rows(
        rows in 1u64..200,
        dim in 1usize..64,
        seed in 0u64..1000,
        picks in 1usize..32,
    ) {
        let table = EmbeddingTable::seeded("t", rows, dim, seed);
        let mut stream = IndexStream::new(Distribution::Uniform, rows, seed);
        let idx = stream.batch(picks);
        let out = ops::gather(&table, &idx).expect("indices in range");
        prop_assert_eq!(out.len(), picks * dim);
        for (i, &r) in idx.iter().enumerate() {
            prop_assert_eq!(&out[i * dim..(i + 1) * dim], table.row(r).expect("in range"));
        }
    }

    /// reduce(Add) is commutative; reduce(Sub) is its anti-symmetric twin.
    #[test]
    fn reduce_algebra(
        n in 1usize..256,
        seed in 0u64..1000,
    ) {
        let a = EmbeddingTable::seeded("a", 1, n, seed);
        let b = EmbeddingTable::seeded("b", 1, n, seed + 1);
        let ab = ops::reduce(a.data(), b.data(), ReduceOp::Add).expect("same shape");
        let ba = ops::reduce(b.data(), a.data(), ReduceOp::Add).expect("same shape");
        prop_assert_eq!(&ab, &ba);
        let sub = ops::reduce(a.data(), b.data(), ReduceOp::Sub).expect("same shape");
        for ((s, x), y) in sub.iter().zip(ab.iter()).zip(b.data()) {
            prop_assert!((s - (x - 2.0 * y)).abs() < 1e-4);
        }
        // Min/Max bound the inputs.
        let mn = ops::reduce(a.data(), b.data(), ReduceOp::Min).expect("same shape");
        let mx = ops::reduce(a.data(), b.data(), ReduceOp::Max).expect("same shape");
        for (lo, hi) in mn.iter().zip(&mx) {
            prop_assert!(lo <= hi);
        }
    }

    /// Averaging a group of identical vectors returns that vector, and the
    /// average always lies within the per-lane min/max envelope.
    #[test]
    fn average_envelope(
        group in 1usize..16,
        dim in 1usize..32,
        seed in 0u64..1000,
    ) {
        let one = EmbeddingTable::seeded("v", 1, dim, seed);
        let repeated: Vec<f32> = one.data().iter().copied().cycle().take(group * dim).collect();
        let avg = ops::average(&repeated, group, dim).expect("whole groups");
        for (a, v) in avg.iter().zip(one.data()) {
            prop_assert!((a - v).abs() < 1e-5);
        }

        let table = EmbeddingTable::seeded("m", group as u64, dim, seed + 7);
        let avg = ops::average(table.data(), group, dim).expect("whole groups");
        for (d, value) in avg.iter().enumerate() {
            let lane: Vec<f32> = (0..group as u64)
                .map(|r| table.row(r).expect("in range")[d])
                .collect();
            let lo = lane.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = lane.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(*value >= lo - 1e-5 && *value <= hi + 1e-5);
        }
    }

    /// Index streams are deterministic per seed and respect bounds for
    /// both distributions.
    #[test]
    fn index_stream_bounds(
        rows in 1u64..1_000_000,
        seed in 0u64..1000,
        s in 0.5f64..1.5,
    ) {
        for dist in [Distribution::Uniform, Distribution::Zipfian { s }] {
            let mut a = IndexStream::new(dist, rows, seed);
            let mut b = IndexStream::new(dist, rows, seed);
            let xa = a.batch(64);
            prop_assert_eq!(&xa, &b.batch(64));
            prop_assert!(xa.iter().all(|&i| i < rows));
        }
    }
}
