//! Cross-crate tests for the hot-row cache tier in the gather path.
//!
//! The RecNMP-style hot-row SRAM in front of the NMP core's local DRAM
//! must be *inert* when disabled (a zero-capacity config reproduces the
//! uncached replay byte for byte, whatever the latent geometry knobs
//! say), and *useful* when skew and capacity cooperate: hit rate is
//! monotone non-decreasing in capacity (the LRU stack property) and
//! rises with Zipf skew. Finally, enabling the cache under the
//! cycle-calibrated pricer must not invert any of the paper's Fig. 14
//! design-point orderings — caching accelerates the memory system, it
//! does not reshuffle the architecture comparison.

use proptest::prelude::*;
use tensordimm::cache::{HotRowCache, HotRowCacheConfig};
use tensordimm::isa::{DimmContext, Instruction};
use tensordimm::models::Workload;
use tensordimm::nmp::{NmpConfig, NmpCore, NmpRunStats};
use tensordimm::serving::zipf_lookup_rows;
use tensordimm::system::{BatchPricer, CyclePricer, CyclePricerConfig, DesignPoint, SystemModel};

fn run_gather(indices: &[u64], vec_blocks: u64, hot_rows: HotRowCacheConfig) -> NmpRunStats {
    let mut cfg = NmpConfig::paper();
    cfg.hot_rows = hot_rows;
    let g = Instruction::Gather {
        table_base: 0,
        idx_base: 1 << 26,
        output_base: 1 << 27,
        count: indices.len() as u64,
        vec_blocks,
    };
    let mut core = NmpCore::new(cfg).expect("valid config");
    core.run_instruction(&g, DimmContext::new(32, 0), Some(indices))
        .expect("valid gather")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance invariant: a zero-capacity cache — no matter what its
    /// latent way-count and hit-latency knobs are set to — reproduces the
    /// uncached replay byte-identically across random gather traces.
    #[test]
    fn zero_capacity_cache_is_byte_identical(
        rows in 1u64..4096,
        count in 1usize..300,
        vec_blocks in prop_oneof![Just(32u64), Just(64u64), Just(128u64)],
        ways in 0u64..8,
        hit_latency_cycles in 0u64..100,
        seed in 0u64..u64::MAX,
    ) {
        let indices = zipf_lookup_rows(count, rows, 0.9, seed);
        let uncached = run_gather(&indices, vec_blocks, HotRowCacheConfig::disabled());
        let zeroed = run_gather(&indices, vec_blocks, HotRowCacheConfig {
            capacity_rows: 0,
            ways,
            hit_latency_cycles,
        });
        prop_assert_eq!(uncached, zeroed);
    }
}

/// LRU stack property, observed end to end: on the same Zipf trace, a
/// strictly larger fully-associative cache never hits less.
#[test]
fn hit_rate_is_monotone_in_capacity() {
    let trace = zipf_lookup_rows(4000, 10_000, 0.9, 7);
    let mut prev_hits = 0u64;
    for capacity in [8u64, 32, 128, 512, 2048] {
        let mut cache = HotRowCache::new(HotRowCacheConfig::fully_associative(capacity))
            .expect("valid geometry");
        for &row in &trace {
            cache.access(row);
        }
        let hits = cache.stats().hits;
        assert!(
            hits >= prev_hits,
            "capacity {capacity}: hits fell from {prev_hits} to {hits}"
        );
        prev_hits = hits;
    }
    assert!(prev_hits > 0, "the largest cache must hit a Zipf-0.9 trace");
}

/// Skew sensitivity: with capacity held fixed, heavier Zipf tails
/// concentrate lookups on the cached head, so hits rise with `s`.
#[test]
fn hit_rate_rises_with_zipf_skew() {
    let mut prev_hits = 0u64;
    for s in [0.0, 0.4, 0.8, 1.1] {
        let trace = zipf_lookup_rows(4000, 10_000, s, 7);
        let mut cache =
            HotRowCache::new(HotRowCacheConfig::fully_associative(256)).expect("valid geometry");
        for &row in &trace {
            cache.access(row);
        }
        let hits = cache.stats().hits;
        assert!(
            hits >= prev_hits,
            "zipf {s}: hits fell from {prev_hits} to {hits}"
        );
        prev_hits = hits;
    }
    assert!(prev_hits > 1000, "zipf 1.1 must hit a 256-row cache hard");
}

/// Fig. 14's design-point orderings survive a cache-enabled cycle
/// pricer: PMEM beats both baselines, TDIMM beats (or near-ties) PMEM,
/// the oracle bounds TDIMM. Orderings only — the calibrated magnitude
/// bands stay pinned by the uncached golden tests.
#[test]
fn fig14_orderings_hold_with_cache_enabled() {
    let m = SystemModel::paper_defaults();
    let mut cfg = CyclePricerConfig::paper_defaults();
    cfg.max_replayed_lookups = 384;
    cfg.nmp.hot_rows = HotRowCacheConfig::fully_associative(4096);
    let cycle = CyclePricer::with_config(&m, cfg);
    let batch = 64;
    for w in Workload::all() {
        let cost = |d: DesignPoint| {
            cycle
                .price(&w, batch, d, 1)
                .expect("valid point")
                .service_us
        };
        let cpu = cost(DesignPoint::CpuOnly);
        let hybrid = cost(DesignPoint::CpuGpu);
        let pmem = cost(DesignPoint::Pmem);
        let tdimm = cost(DesignPoint::Tdimm);
        let oracle = cost(DesignPoint::GpuOnly);
        assert!(
            pmem < cpu.min(hybrid),
            "{}: PMEM {pmem:.1} must beat baselines",
            w.name
        );
        // NCF's reduction factor of 2 keeps TDIMM/PMEM a near-tie.
        let tie = if w.name == tensordimm::models::WorkloadName::Ncf {
            1.13
        } else {
            1.0
        };
        assert!(
            tdimm <= pmem * tie,
            "{}: PMEM {pmem:.1} beat TDIMM {tdimm:.1}",
            w.name
        );
        assert!(
            oracle <= tdimm * 1.001,
            "{}: TDIMM {tdimm:.1} beat the oracle {oracle:.1}",
            w.name
        );
    }
}
