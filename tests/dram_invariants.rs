//! Property-based tests over the DRAM substrate: address-mapping bijection,
//! request conservation, and physical bandwidth bounds.

use proptest::prelude::*;

use tensordimm::dram::{DramConfig, MappingScheme, MemorySystem, Request, Trace, TraceRunner};

fn arb_geometry() -> impl Strategy<Value = tensordimm::dram::config::Geometry> {
    (0u32..2, 0u32..3, 1u32..3, 1u32..3, 8u32..12, 5u32..8).prop_map(
        |(ch, ranks, bg, banks, rows, cols)| tensordimm::dram::config::Geometry {
            channels: 1 << ch,
            ranks_per_channel: 1 << ranks,
            bank_groups: 1 << bg,
            banks_per_group: 1 << banks,
            rows: 1 << rows,
            columns: 1 << cols,
            bus_bytes: 8,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode is a bijection (via encode) for every preset mapping and
    /// any in-range address.
    #[test]
    fn mapping_bijection(geom in arb_geometry(), frac in 0.0f64..1.0) {
        let addr = ((geom.capacity_bytes() as f64 * frac) as u64) & !63;
        let addr = addr.min(geom.capacity_bytes() - 64);
        for mapping in [
            MappingScheme::rank_interleaved(&geom),
            MappingScheme::channel_interleaved(&geom),
            MappingScheme::vector_per_rank(&geom),
            MappingScheme::nmp_local(&geom),
        ] {
            mapping.validate(&geom).expect("preset fits geometry");
            let coord = mapping.decode(addr, &geom).expect("in range");
            prop_assert!(coord.channel < geom.channels);
            prop_assert!(coord.rank < geom.ranks_per_channel);
            prop_assert!(coord.bank_group < geom.bank_groups);
            prop_assert!(coord.bank < geom.banks_per_group);
            prop_assert!(coord.row < geom.rows);
            prop_assert!(coord.column < geom.columns);
            prop_assert_eq!(mapping.encode(&coord, &geom), addr);
        }
    }

    /// Every request pushed is eventually completed exactly once, and the
    /// simulator never reports more than physical peak bandwidth.
    #[test]
    fn conservation_and_bandwidth_bound(
        reads in 1usize..200,
        writes in 0usize..100,
        stride in 1u64..64,
        seed in 0u64..1000,
    ) {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = seed % 2 == 0;
        let cap = cfg.capacity_bytes();
        let mut trace = Trace::new();
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for i in 0..reads {
            trace.read((i as u64 * stride * 64) % cap);
        }
        for _ in 0..writes {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            trace.write((x % cap) & !63);
        }
        let mut runner = TraceRunner::new(MemorySystem::new(cfg).expect("valid")) ;
        let stats = runner.run(&trace).expect("in range");
        prop_assert_eq!(stats.totals.reads, reads as u64);
        prop_assert_eq!(stats.totals.writes, writes as u64);
        prop_assert!(stats.utilization() <= 1.0 + 1e-9, "util {}", stats.utilization());
        let done = runner.memory_mut().drain_completions();
        prop_assert_eq!(done.len(), reads + writes);
    }

    /// Request latency is bounded below by the physical minimum
    /// (tRCD + CL + burst for a cold bank).
    #[test]
    fn latency_lower_bound(addr_block in 0u64..10_000) {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let t = cfg.timing.clone();
        let mut mem = MemorySystem::new(cfg).expect("valid");
        mem.push(Request::read(addr_block * 64)).expect("in range").then_some(()).expect("queue empty");
        mem.run_to_completion();
        let done = mem.drain_completions();
        prop_assert_eq!(done.len(), 1);
        prop_assert!(done[0].latency() >= t.trcd + t.cl + t.burst_cycles());
    }
}
