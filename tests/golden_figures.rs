//! Golden-regression layer over the paper-figure pipelines.
//!
//! The figure binaries (`fig04`, `fig12`, `fig14`, …) print their numbers
//! but nothing asserted them, so a latency-model refactor could silently
//! invert the paper's headline TDIMM-vs-PMEM conclusions without a test
//! failing. This suite snapshots the key quantities behind three figures
//! as asserted ranges and orderings. The bands are ±~10% around the values
//! the model produced when this file was written; they are deliberately
//! looser than run-to-run noise (everything here is deterministic) so only
//! *model* changes trip them — and a deliberate recalibration should
//! update them alongside an EXPERIMENTS.md note.

use tensordimm::models::Workload;
use tensordimm::system::{
    geometric_mean, AnalyticPricer, BatchPricer, CyclePricer, CyclePricerConfig, DesignPoint,
    SystemModel,
};
use tensordimm_bench::traffic::{cpu_gbps, tensornode_gbps, OpExperiment, OpKind};

/// The Fig. 4/14 batch grid.
const BATCHES: [usize; 3] = [8, 64, 128];

fn geomean_normalized(model: &SystemModel, design: DesignPoint, batches: &[usize]) -> f64 {
    let vals: Vec<f64> = Workload::all()
        .iter()
        .flat_map(|w| batches.iter().map(|&b| model.normalized(w, b, design)))
        .collect();
    geometric_mean(&vals)
}

// ---------------------------------------------------------------- Fig. 4

/// Fig. 4's headline: both baselines sit far below the GPU-only oracle,
/// and the hybrid is *worse* than CPU-only on average (PCIe copies of
/// gathered embeddings dominate).
#[test]
fn fig04_baseline_gap_bands() {
    let m = SystemModel::paper_defaults();
    let batches = [1usize, 8, 64, 128]; // fig04 includes batch 1
    let g_cpu = geomean_normalized(&m, DesignPoint::CpuOnly, &batches);
    let g_hybrid = geomean_normalized(&m, DesignPoint::CpuGpu, &batches);
    // Snapshot: 0.235 / 0.149 (slowdowns 4.3x / 6.7x).
    assert!((0.20..0.27).contains(&g_cpu), "CPU-only geomean {g_cpu:.3}");
    assert!(
        (0.12..0.18).contains(&g_hybrid),
        "CPU-GPU geomean {g_hybrid:.3}"
    );
    assert!(
        g_hybrid < g_cpu,
        "hybrid ({g_hybrid:.3}) must average below CPU-only ({g_cpu:.3})"
    );
}

/// Fig. 4's low-batch crossover: at batch 1 NCF is better served by the
/// CPU alone than by paying the PCIe copy; by batch 128 the order flips.
#[test]
fn fig04_low_batch_crossover() {
    let m = SystemModel::paper_defaults();
    let w = Workload::ncf();
    assert!(
        m.normalized(&w, 1, DesignPoint::CpuOnly) > m.normalized(&w, 1, DesignPoint::CpuGpu),
        "batch-1 crossover lost"
    );
    assert!(
        m.normalized(&w, 128, DesignPoint::CpuOnly) < m.normalized(&w, 128, DesignPoint::CpuGpu),
        "large-batch order lost"
    );
}

// --------------------------------------------------------------- Fig. 12

/// Fig. 12 on a scaled-down experiment (the full sweep takes minutes):
/// TensorNode bandwidth scales with DIMM count while the CPU memory
/// system stays pinned at its fixed channel bandwidth.
#[test]
fn fig12_dimm_scaling_bands() {
    let exp = |scale: u64| {
        move |op| OpExperiment {
            op,
            count: 16 * 50,
            vec_blocks: 32 * scale,
            table_rows: 200_000,
            seed: 0xf1202,
            zipf_s: 0.0,
        }
    };
    // Snapshot at 32 DIMMs: GATHER 757, REDUCE 793, AVERAGE 797 GB/s.
    let gather32 = tensornode_gbps(&exp(1)(OpKind::Gather), 32);
    let reduce32 = tensornode_gbps(&exp(1)(OpKind::Reduce), 32);
    let avg32 = tensornode_gbps(&exp(1)(OpKind::Average { group: 50 }), 32);
    assert!(
        (680.0..819.2).contains(&gather32),
        "GATHER@32 {gather32:.0} GB/s"
    );
    assert!(
        (715.0..819.2).contains(&reduce32),
        "REDUCE@32 {reduce32:.0} GB/s"
    );
    assert!(
        (715.0..819.2).contains(&avg32),
        "AVERAGE@32 {avg32:.0} GB/s"
    );

    // Doubling DIMMs (with 2x embeddings, as the paper provisions) must
    // double node bandwidth to within 10%.
    let gather64 = tensornode_gbps(&exp(2)(OpKind::Gather), 64);
    let ratio = gather64 / gather32;
    assert!(
        (1.8..2.2).contains(&ratio),
        "64/32-DIMM scaling {ratio:.2}x"
    );

    // The CPU side saturates below its 204.8 GB/s physical peak no matter
    // how many ranks are installed. Snapshot: ~190 GB/s.
    let cpu32 = cpu_gbps(&exp(1)(OpKind::Gather), 8, 4);
    let cpu64 = cpu_gbps(&exp(2)(OpKind::Gather), 8, 8);
    for (label, bw) in [("4 ranks", cpu32), ("8 ranks", cpu64)] {
        assert!((150.0..204.8).contains(&bw), "CPU {label}: {bw:.0} GB/s");
    }
    assert!(
        gather32 > 3.0 * cpu32,
        "node@32 ({gather32:.0}) must dwarf CPU ({cpu32:.0})"
    );
}

// --------------------------------------------------------------- Fig. 14

/// Fig. 14's geomeans, as bands around the snapshot values
/// (CPU-only 0.141, CPU-GPU 0.096, PMEM 0.508, TDIMM 0.850).
#[test]
fn fig14_geomean_bands() {
    let m = SystemModel::paper_defaults();
    let bands = [
        (DesignPoint::CpuOnly, 0.12, 0.17),
        (DesignPoint::CpuGpu, 0.08, 0.12),
        (DesignPoint::Pmem, 0.45, 0.57),
        (DesignPoint::Tdimm, 0.80, 0.90),
    ];
    for (design, lo, hi) in bands {
        let g = geomean_normalized(&m, design, &BATCHES);
        assert!(
            (lo..hi).contains(&g),
            "{design} geomean {g:.3} outside [{lo}, {hi})"
        );
    }
}

/// The per-point orderings that carry the paper's conclusions: every
/// workload × batch keeps `baselines < PMEM ≲ TDIMM ≤ oracle`, and TDIMM
/// never drops below 75% of the oracle (paper: "never below 75%").
#[test]
fn fig14_orderings_hold_pointwise() {
    let m = SystemModel::paper_defaults();
    for w in Workload::all() {
        for &b in &BATCHES {
            let cpu = m.normalized(&w, b, DesignPoint::CpuOnly);
            let hybrid = m.normalized(&w, b, DesignPoint::CpuGpu);
            let pmem = m.normalized(&w, b, DesignPoint::Pmem);
            let tdimm = m.normalized(&w, b, DesignPoint::Tdimm);
            assert!(
                cpu.max(hybrid) < pmem,
                "{} b{b}: baselines beat PMEM",
                w.name
            );
            // NCF's reduction factor of 2 makes TDIMM/PMEM a near-tie, and
            // at batch 8 the TensorISA dispatch overhead even puts PMEM
            // ~10% ahead (snapshot: 0.902 vs 0.820) — hold that band, not
            // strict dominance.
            let tie_tolerance = if w.name == tensordimm::models::WorkloadName::Ncf {
                0.89
            } else {
                1.0
            };
            assert!(
                tdimm > pmem * tie_tolerance,
                "{} b{b}: PMEM beat TDIMM",
                w.name
            );
            assert!(tdimm <= 1.001, "{} b{b}: TDIMM beat the oracle", w.name);
            assert!(
                tdimm >= 0.75,
                "{} b{b}: TDIMM fell to {tdimm:.3} of oracle",
                w.name
            );
        }
    }
}

/// The Fig. 14 orderings must survive swapping the serving layer's batch
/// pricer from the analytic model to the cycle-calibrated backend (each
/// batch's Zipf gather trace replayed on the event-driven DRAM/NMP
/// co-simulator): per workload, `baselines < PMEM ≲ TDIMM` on solo batch
/// cost, and the two backends agree within the documented ±15% band
/// (EXPERIMENTS.md, "Analytic vs cycle-calibrated serving"; the full grid
/// is gated by `sweep_backend_compare`). Debug builds replay a shortened
/// trace — bandwidth reaches steady state well before the cap.
#[test]
fn fig14_orderings_hold_under_cycle_pricer() {
    let m = SystemModel::paper_defaults();
    let analytic = AnalyticPricer::new(&m);
    let mut cfg = CyclePricerConfig::paper_defaults();
    cfg.max_replayed_lookups = 384;
    let cycle = CyclePricer::with_config(&m, cfg);
    let batch = 64;
    for w in Workload::all() {
        let cost = |pricer: &dyn BatchPricer, d: DesignPoint| {
            pricer
                .price(&w, batch, d, 1)
                .expect("valid point")
                .service_us
        };
        for pricer in [&analytic as &dyn BatchPricer, &cycle as &dyn BatchPricer] {
            let cpu = cost(pricer, DesignPoint::CpuOnly);
            let hybrid = cost(pricer, DesignPoint::CpuGpu);
            let pmem = cost(pricer, DesignPoint::Pmem);
            let tdimm = cost(pricer, DesignPoint::Tdimm);
            let oracle = cost(pricer, DesignPoint::GpuOnly);
            let tag = pricer.backend().label();
            assert!(
                pmem < cpu.min(hybrid),
                "{} [{tag}]: PMEM {pmem:.1} must beat baselines",
                w.name
            );
            // NCF's reduction factor of 2 keeps TDIMM/PMEM a near-tie.
            let tie = if w.name == tensordimm::models::WorkloadName::Ncf {
                1.13
            } else {
                1.0
            };
            assert!(
                tdimm <= pmem * tie,
                "{} [{tag}]: PMEM {pmem:.1} beat TDIMM {tdimm:.1}",
                w.name
            );
            assert!(
                oracle <= tdimm * 1.001,
                "{} [{tag}]: TDIMM beat the oracle",
                w.name
            );
        }
        for d in [DesignPoint::Pmem, DesignPoint::Tdimm] {
            let a = cost(&analytic, d);
            let c = cost(&cycle, d);
            let gap = (c - a).abs() / a;
            assert!(
                gap < 0.15,
                "{} {d}: cycle {c:.1} vs analytic {a:.1} diverged {gap:.3}",
                w.name
            );
        }
    }
}

/// The headline TDIMM-over-PMEM gap on the highest-reduction workload:
/// Facebook at batch 64 snapshots at 1.91x; hold it within ±15%.
#[test]
fn fig14_tdimm_speedup_over_pmem_band() {
    let m = SystemModel::paper_defaults();
    let w = Workload::facebook();
    let s = m.speedup(&w, 64, DesignPoint::Tdimm, DesignPoint::Pmem);
    assert!(
        (1.6..2.2).contains(&s),
        "TDIMM over PMEM on Facebook@64: {s:.2}x"
    );
}
