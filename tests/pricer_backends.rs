//! Cross-crate integration tests for the pluggable batch-pricing
//! backends: backend selection through `SimConfig`, cycle-backend
//! determinism at serving granularity, latency-table reuse across a
//! sweep, and the Zipf row sampler the cycle backend shares with the
//! traffic harnesses.

use tensordimm::models::Workload;
use tensordimm::serving::{
    offered_load_sweep, simulate, simulate_with_pricer, zipf_lookup_rows, ArrivalProcess,
    BatchPolicy, SimConfig,
};
use tensordimm::system::{
    AnalyticPricer, CyclePricer, CyclePricerConfig, DesignPoint, PricingBackend, SystemModel,
};

/// Shortened replays keep the debug-build suite fast; the measured
/// bandwidth reaches steady state well before the cap.
fn quick_cycle_pricer(model: &SystemModel) -> CyclePricer<'_> {
    let mut cfg = CyclePricerConfig::paper_defaults();
    cfg.max_replayed_lookups = 256;
    CyclePricer::with_config(model, cfg)
}

#[test]
fn simulate_dispatches_on_the_configured_backend() {
    let model = SystemModel::paper_defaults();
    let w = Workload::youtube();
    let arrivals = ArrivalProcess::Poisson { rate_qps: 80_000.0 }.sample_arrivals_us(120, 3);
    let base = SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(8, 200.0));

    // The default is analytic, and `simulate` matches an explicit
    // analytic pricer bit-for-bit.
    assert_eq!(base.pricing, PricingBackend::Analytic);
    let via_cfg = simulate(&model, &w, &base, &arrivals).expect("valid");
    let via_pricer =
        simulate_with_pricer(&w, &base, &arrivals, &AnalyticPricer::new(&model)).expect("valid");
    assert_eq!(via_cfg, via_pricer);

    // The cycle backend flows through `SimConfig` the same way.
    let cycle_cfg = base.with_pricing(PricingBackend::CycleCalibrated);
    let via_cycle_cfg = simulate(&model, &w, &cycle_cfg, &arrivals).expect("valid");
    let via_cycle_pricer =
        simulate_with_pricer(&w, &cycle_cfg, &arrivals, &CyclePricer::new(&model)).expect("valid");
    assert_eq!(via_cycle_cfg, via_cycle_pricer);
    assert_ne!(
        via_cfg.latency.p99_us, via_cycle_cfg.latency.p99_us,
        "backends must not alias on a node design"
    );
}

#[test]
fn cycle_backend_serving_run_is_deterministic() {
    let model = SystemModel::paper_defaults();
    let w = Workload::fox();
    let arrivals = ArrivalProcess::Bursty {
        rate_qps: 60_000.0,
        mean_burst: 8.0,
    }
    .sample_arrivals_us(150, 11);
    let cfg = SimConfig::new(DesignPoint::Pmem, 3, BatchPolicy::new(16, 250.0));
    let a = simulate_with_pricer(&w, &cfg, &arrivals, &quick_cycle_pricer(&model)).expect("valid");
    let b = simulate_with_pricer(&w, &cfg, &arrivals, &quick_cycle_pricer(&model)).expect("valid");
    assert_eq!(a, b, "fresh pricers must replay bit-identically");
    assert!(a.is_conserved());
    assert_eq!(a.completed, 150);
}

#[test]
fn warmed_latency_table_prices_identically_to_cold() {
    let model = SystemModel::paper_defaults();
    let w = Workload::youtube();
    let arrivals = ArrivalProcess::Poisson { rate_qps: 90_000.0 }.sample_arrivals_us(100, 29);
    let cfg = SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(8, 200.0));
    let shared = quick_cycle_pricer(&model);
    let first = simulate_with_pricer(&w, &cfg, &arrivals, &shared).expect("valid");
    let warmed_entries = shared.cached_entries();
    assert!(warmed_entries > 0, "the run must have populated the table");
    // The second run is served from the memoized table and must be
    // bit-identical to the cold one.
    let second = simulate_with_pricer(&w, &cfg, &arrivals, &shared).expect("valid");
    assert_eq!(first, second);
    assert_eq!(
        shared.cached_entries(),
        warmed_entries,
        "a replayed run must not grow the table"
    );
}

#[test]
fn offered_load_sweep_supports_both_backends() {
    let model = SystemModel::paper_defaults();
    let w = Workload::ncf();
    let rates = [20_000.0, 60_000.0];
    for backend in [PricingBackend::Analytic, PricingBackend::CycleCalibrated] {
        let cfg =
            SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(8, 200.0)).with_pricing(backend);
        let points = offered_load_sweep(&model, &w, &cfg, &rates, 120, 7).expect("valid");
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.report.completed, 120, "{}", backend.label());
            assert!(p.report.is_conserved());
        }
    }
}

/// The sampler the cycle pricer draws its gather traces from keeps its
/// head-heaviness across table scales — including paper-scale row counts
/// where any O(rows) CDF precompute would be fatal — and stays pinned per
/// seed at small scale.
#[test]
fn zipf_rows_scale_invariants() {
    let small = zipf_lookup_rows(4_000, 10_000, 0.9, 13);
    let huge = zipf_lookup_rows(4_000, 2_000_000_000, 0.9, 13);
    let head = |rows_hit: &[u64], rows: u64| {
        rows_hit.iter().filter(|&&r| r < rows / 100).count() as f64 / rows_hit.len() as f64
    };
    let small_head = head(&small, 10_000);
    let huge_head = head(&huge, 2_000_000_000);
    assert!(small_head > 0.10, "small-table head share {small_head:.3}");
    assert!(huge_head > 0.05, "billion-row head share {huge_head:.3}");
    // Fixed seed ⇒ fixed stream, at any scale.
    assert_eq!(huge, zipf_lookup_rows(4_000, 2_000_000_000, 0.9, 13));
    assert_eq!(small, zipf_lookup_rows(4_000, 10_000, 0.9, 13));
}
