//! Thread-count invariance of the deterministic parallel execution layer:
//! the parallel sweep, the shared cycle-pricer memo table and the
//! multi-worker DRAM channel advance must all be bit-identical to their
//! single-threaded oracles at any worker count, and concurrent cold
//! misses must never duplicate a replay.

use proptest::prelude::*;

use tensordimm::dram::{DramConfig, MemorySystem, Request};
use tensordimm::models::{Workload, WorkloadName};
use tensordimm::serving::{
    offered_load_sweep, offered_load_sweep_par, simulate_with_pricer, AdmissionPolicy, BatchPolicy,
    FaultPlan, RetryPolicy, SimConfig,
};
use tensordimm::system::{
    BatchPricer, CycleKey, CyclePricer, CyclePricerConfig, DesignPoint, PricingBackend, SystemModel,
};

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(WorkloadName::Ncf),
        Just(WorkloadName::YouTube),
        Just(WorkloadName::Fox),
        Just(WorkloadName::Facebook),
    ]
    .prop_map(Workload::by_name)
}

fn arb_backend() -> impl Strategy<Value = PricingBackend> {
    prop_oneof![
        Just(PricingBackend::Analytic),
        Just(PricingBackend::CycleCalibrated),
    ]
}

/// A quick cycle pricer for stress tests (short replays, same semantics).
fn quick_cycle_pricer(model: &SystemModel) -> CyclePricer<'_> {
    let mut cfg = CyclePricerConfig::paper_defaults();
    cfg.max_replayed_lookups = 128;
    CyclePricer::with_config(model, cfg)
}

fn table_bits(p: &CyclePricer<'_>) -> Vec<(CycleKey, u64)> {
    p.cached_table()
        .into_iter()
        .map(|(k, v)| (k, v.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline invariance: p50/p95/p99, throughput — in fact the
    /// whole `LoadPoint` including per-request records — are bit-identical
    /// across 1, 2 and 8 workers, for both pricing backends, random
    /// workloads and random rate grids.
    #[test]
    fn sweep_reports_invariant_across_worker_counts(
        workload in arb_workload(),
        backend in arb_backend(),
        base_rate in 20_000.0f64..200_000.0,
        rate_step in 1.3f64..3.0,
        n_rates in 2usize..5,
        gpus in 1usize..5,
        seed in 0u64..500,
    ) {
        let model = SystemModel::paper_defaults();
        let cfg = SimConfig::new(DesignPoint::Tdimm, gpus, BatchPolicy::new(8, 200.0))
            .with_pricing(backend);
        let rates: Vec<f64> = (0..n_rates)
            .map(|i| base_rate * rate_step.powi(i as i32))
            .collect();
        // Cycle replays are expensive even shortened; keep request counts
        // modest (the invariance is about scheduling, not scale).
        let requests = if backend == PricingBackend::CycleCalibrated { 30 } else { 200 };
        let seq = offered_load_sweep(&model, &workload, &cfg, &rates, requests, seed)
            .expect("valid");
        for workers in [2usize, 8] {
            let par = offered_load_sweep_par(
                &model, &workload, &cfg, &rates, requests, seed, workers,
            )
            .expect("valid");
            prop_assert_eq!(&seq, &par, "workers={}", workers);
            for (s, p) in seq.iter().zip(par.iter()) {
                prop_assert_eq!(
                    s.report.latency.p50_us.to_bits(),
                    p.report.latency.p50_us.to_bits()
                );
                prop_assert_eq!(
                    s.report.latency.p95_us.to_bits(),
                    p.report.latency.p95_us.to_bits()
                );
                prop_assert_eq!(
                    s.report.latency.p99_us.to_bits(),
                    p.report.latency.p99_us.to_bits()
                );
                prop_assert_eq!(
                    s.report.throughput_qps.to_bits(),
                    p.report.throughput_qps.to_bits()
                );
            }
        }
    }

    /// The same invariance with the fault layer armed: DIMM faults, a
    /// deadline/retry/hedging policy and bounded admission all ride inside
    /// `SimConfig`, so fanning the load points across a worker pool must
    /// still be bit-identical to the sequential sweep — outcome counters,
    /// goodput and per-request records included.
    #[test]
    fn fault_enabled_sweep_invariant_across_worker_counts(
        workload in arb_workload(),
        fault_rate in 0.0f64..1.0,
        fault_seed in 0u64..1_000,
        base_rate in 50_000.0f64..300_000.0,
        n_rates in 2usize..4,
        seed in 0u64..500,
    ) {
        let model = SystemModel::paper_defaults();
        let mut plan = FaultPlan::dimm_faults(fault_seed, fault_rate);
        plan.dimms = 2;
        plan.dimm_candidate_gap_us = 250.0;
        plan.dimm_repair_us = 2_500.0;
        let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(16, 250.0))
            .with_faults(plan)
            .with_retry(
                RetryPolicy::none()
                    .with_deadline(2_000.0)
                    .with_retries(3, 100.0, 2_000.0)
                    .with_hedging(1_500.0),
            )
            .with_admission(AdmissionPolicy::bounded(64));
        let rates: Vec<f64> = (0..n_rates)
            .map(|i| base_rate * 2f64.powi(i as i32))
            .collect();
        let seq = offered_load_sweep(&model, &workload, &cfg, &rates, 150, seed)
            .expect("valid");
        for workers in [2usize, 8] {
            let par = offered_load_sweep_par(
                &model, &workload, &cfg, &rates, 150, seed, workers,
            )
            .expect("valid");
            prop_assert_eq!(&seq, &par, "workers={}", workers);
            for (s, p) in seq.iter().zip(par.iter()) {
                prop_assert_eq!(s.report.outcomes, p.report.outcomes);
                prop_assert_eq!(
                    s.report.goodput_qps.to_bits(),
                    p.report.goodput_qps.to_bits()
                );
                prop_assert_eq!(
                    s.report.latency.p99_us.to_bits(),
                    p.report.latency.p99_us.to_bits()
                );
            }
        }
    }

    /// Memo-table invariance: warming the same shape set on 1, 2 and 8
    /// workers leaves bit-identical table contents and one replay per
    /// distinct key.
    #[test]
    fn memo_table_invariant_across_worker_counts(
        workload in arb_workload(),
        batches in proptest::collection::vec(1usize..64, 2..6),
    ) {
        let model = SystemModel::paper_defaults();
        let shapes: Vec<(Workload, usize)> =
            batches.iter().map(|&b| (workload.clone(), b)).collect();
        let oracle = quick_cycle_pricer(&model);
        let fresh = oracle.warm(&shapes, 1);
        prop_assert_eq!(fresh, oracle.cached_entries() as u64);
        let oracle_table = table_bits(&oracle);
        for workers in [2usize, 8] {
            let p = quick_cycle_pricer(&model);
            prop_assert_eq!(p.warm(&shapes, workers), fresh, "workers={}", workers);
            prop_assert_eq!(
                p.replay_count(), fresh,
                "duplicate replays at workers={}", workers
            );
            prop_assert_eq!(&table_bits(&p), &oracle_table, "workers={}", workers);
        }
    }
}

/// Racing `price` calls from many threads for the *same* cold key must
/// collapse to exactly one replay (the per-key cell serializes them), and
/// every caller sees the bit-identical price.
#[test]
fn concurrent_same_key_misses_share_one_replay() {
    let model = SystemModel::paper_defaults();
    let pricer = quick_cycle_pricer(&model);
    let w = Workload::youtube();
    let prices: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(|| {
                    pricer
                        .price(&w, 16, DesignPoint::Tdimm, 4)
                        .expect("valid")
                        .service_us
                        .to_bits()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    assert!(prices.windows(2).all(|p| p[0] == p[1]));
    assert_eq!(
        pricer.replay_count(),
        1,
        "same key must replay exactly once"
    );
    assert_eq!(pricer.cached_entries(), 1);
}

/// A bigger concurrent-warm stress: many threads warm overlapping shape
/// lists at once; the table must end with one entry per distinct key and
/// exactly that many replays, priced identically to a fresh pricer.
#[test]
fn concurrent_warm_stress_no_duplicate_replays() {
    let model = SystemModel::paper_defaults();
    let pricer = quick_cycle_pricer(&model);
    let w = Workload::ncf();
    let batches = [1usize, 2, 4, 8, 16, 32];
    let shapes: Vec<(Workload, usize)> = batches.iter().map(|&b| (w.clone(), b)).collect();
    std::thread::scope(|s| {
        for _ in 0..6 {
            s.spawn(|| {
                // Each thread warms the full list with its own inner pool.
                pricer.warm(&shapes, 2);
            });
        }
    });
    assert_eq!(pricer.cached_entries(), batches.len());
    assert_eq!(
        pricer.replay_count(),
        batches.len() as u64,
        "overlapping warms must not duplicate replays"
    );
    let fresh = quick_cycle_pricer(&model);
    fresh.warm(&shapes, 1);
    assert_eq!(table_bits(&pricer), table_bits(&fresh));
}

/// `set_config`/`set_dram_config` take `&self`: invalidation while other
/// threads are actively pricing must neither deadlock nor poison the
/// table, and prices taken after the swap must reflect the new knobs.
#[test]
fn invalidation_races_concurrent_readers_safely() {
    let model = SystemModel::paper_defaults();
    let pricer = quick_cycle_pricer(&model);
    let w = Workload::fox();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for batch in [4usize, 8, 16, 4, 8, 16] {
                    let cost = pricer
                        .price(&w, batch, DesignPoint::Tdimm, 2)
                        .expect("valid");
                    assert!(cost.service_us.is_finite() && cost.service_us > 0.0);
                }
            });
        }
        s.spawn(|| {
            for _ in 0..3 {
                let mut dram = pricer.config().nmp.dram;
                dram.timing.clock_mhz /= 2;
                pricer.set_dram_config(dram);
            }
        });
    });
    // Post-race: the table reflects the final (eighth-clock) config only.
    let final_config = pricer.config();
    pricer.set_config(final_config.clone());
    let slow = pricer.measured_node_gbps(&w, 8);
    let reference = CyclePricer::with_config(&model, final_config);
    assert_eq!(
        slow.to_bits(),
        reference.measured_node_gbps(&w, 8).to_bits(),
        "post-invalidation measurement must match a fresh pricer at the same config"
    );
    let full_clock = quick_cycle_pricer(&model);
    assert!(
        slow < full_clock.measured_node_gbps(&w, 8),
        "an eighth-clock replay must be slower than full clock"
    );
}

/// The engine tier's invariance, driven through the public facade: a
/// multi-channel drain + far advance is bit-identical across worker
/// counts (the in-crate tests cover more geometries).
#[test]
fn dram_channel_advance_invariant_across_worker_counts() {
    let cfg = DramConfig::cpu_memory(8);
    let run = |workers: usize| {
        let mut mem = MemorySystem::new(cfg.clone())
            .expect("valid")
            .with_workers(workers);
        for i in 0..1024u64 {
            mem.push_when_ready(Request::read((i * 4096) % cfg.capacity_bytes()).with_id(i));
        }
        mem.run_to_completion();
        mem.advance_to(mem.cycle() + 500_000);
        let completions = mem.drain_completions();
        (mem.stats(), completions, mem.cycle())
    };
    let oracle = run(1);
    for workers in [2usize, 8] {
        assert_eq!(run(workers), oracle, "workers={workers}");
    }
}

/// Sharing one pricer between a sequential simulate call and a parallel
/// sweep must keep results bit-identical (the memoized state is a pure
/// function of the keys, never of who filled it).
#[test]
fn shared_pricer_between_sequential_and_parallel_runs() {
    let model = SystemModel::paper_defaults();
    // Paper-default knobs: the sweep below builds its backend the same way.
    let pricer = CyclePricer::new(&model);
    let w = Workload::youtube();
    let cfg = SimConfig::new(DesignPoint::Pmem, 2, BatchPolicy::new(4, 150.0));
    let arrivals = tensordimm::serving::sweep_arrivals_us(40_000.0, 50, 21);
    let cold = simulate_with_pricer(&w, &cfg, &arrivals, &pricer).expect("valid");
    // Re-run through a parallel sweep at the same rate: the first point
    // must be bit-identical to the standalone run even though the table
    // is now warm and shared.
    let cfg_cycle = cfg.with_pricing(PricingBackend::CycleCalibrated);
    let points =
        offered_load_sweep_par(&model, &w, &cfg_cycle, &[40_000.0], 50, 21, 4).expect("valid");
    assert_eq!(points[0].report, cold);
}
