//! Property tests for the sharded cluster layer: placement owner sets are
//! valid for arbitrary plans, cluster runs replay bit-identically at any
//! worker count, the rejoined outcome accounting conserves requests under
//! arbitrary fault/failover/horizon combinations, an inert cluster
//! decomposes into independent single-node runs, availability is monotone
//! in the per-node fault rate, and an all-dead cluster produces finite
//! metrics (the all-shed contract at cluster scale).
//!
//! Exercises the `tensordimm::cluster` facade path end to end.

use proptest::prelude::*;

use tensordimm::cluster::{
    shard_sim_config, shard_traces, simulate_cluster, ClusterConfig, FailoverPolicy, NodeSpec,
    ShardPlan,
};
use tensordimm::faults::{FaultPlan, NodeOutage};
use tensordimm::models::{Workload, WorkloadName};
use tensordimm::serving::{
    simulate, AdmissionPolicy, ArrivalProcess, BatchPolicy, RequestOutcome, RetryPolicy,
};
use tensordimm::system::{DesignPoint, SystemModel};

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(WorkloadName::Ncf),
        Just(WorkloadName::YouTube),
        Just(WorkloadName::Facebook),
    ]
    .prop_map(Workload::by_name)
}

/// An arbitrary valid plan over 1–5 nodes: every placement family, any
/// legal replication factor (derived from a free draw so the pair always
/// validates).
fn arb_plan() -> impl Strategy<Value = ShardPlan> {
    (1usize..6, 0usize..32, 0usize..4, 1u64..200_000).prop_map(
        |(nodes, repl_draw, family, hot_rows)| {
            let replication = 1 + repl_draw % nodes;
            match family {
                0 => ShardPlan::hash(nodes, replication),
                1 => ShardPlan::round_robin(nodes, replication),
                2 => ShardPlan::capacity_aware(
                    (0..nodes).map(|n| 1.0 + n as f64).collect(),
                    replication,
                ),
                _ => ShardPlan::hot_cold(nodes, replication, hot_rows),
            }
            .expect("constructed within the validated ranges")
        },
    )
}

fn arb_failover() -> impl Strategy<Value = FailoverPolicy> {
    prop_oneof![
        Just(FailoverPolicy::None),
        Just(FailoverPolicy::Reroute),
        Just(FailoverPolicy::HedgeDegraded),
    ]
}

/// A per-node base fault plan: sometimes inert, sometimes harsh.
fn arb_base_faults() -> impl Strategy<Value = FaultPlan> {
    (0.0f64..1.0, 0u64..50, 0usize..2).prop_map(|(rate, seed, outage)| {
        let outage = outage == 1;
        let mut plan = FaultPlan::dimm_faults(seed, rate);
        plan.dimms = 2;
        plan.dimm_candidate_gap_us = 300.0;
        plan.dimm_repair_us = 2_000.0;
        if outage {
            plan.node_outage = Some(NodeOutage {
                start_us: 200.0,
                duration_us: 900.0,
            });
        }
        plan
    })
}

fn cluster_cfg(plan: ShardPlan, base: FaultPlan, failover: FailoverPolicy) -> ClusterConfig {
    let nodes = (0..plan.nodes())
        .map(|n| NodeSpec::paper(2).with_faults(base.for_node(n as u64)))
        .collect();
    ClusterConfig::new(plan, nodes, DesignPoint::Tdimm, BatchPolicy::new(16, 250.0))
        .with_retry(RetryPolicy::none().with_deadline(4_000.0))
        .with_admission(AdmissionPolicy::bounded(64))
        .with_failover(failover)
        .with_lookups(6, 0.9, 0x7e50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Owner sets are always `replication` distinct in-range nodes led by
    /// the primary, and are a pure function of the row.
    #[test]
    fn owner_sets_are_valid(plan in arb_plan(), rows in prop::collection::vec(0u64..5_000_000, 1..40)) {
        for row in rows {
            let owners = plan.owners(row);
            prop_assert_eq!(owners.len(), plan.replication());
            prop_assert!(owners.iter().all(|&o| o < plan.nodes()));
            prop_assert_eq!(owners[0], plan.primary(row));
            let mut sorted = owners.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), plan.replication(), "owners must be distinct");
            prop_assert_eq!(owners, plan.owners(row));
        }
    }

    /// A cluster run is a pure function of its inputs — bit-identical on
    /// replay and at any worker count.
    #[test]
    fn cluster_replays_bit_identically(
        workload in arb_workload(),
        plan in arb_plan(),
        base in arb_base_faults(),
        failover in arb_failover(),
        seed in 0u64..200,
    ) {
        let model = SystemModel::paper_defaults();
        let cfg = cluster_cfg(plan, base, failover);
        let arrivals = ArrivalProcess::Poisson { rate_qps: 120_000.0 }.sample_arrivals_us(120, seed);
        let a = simulate_cluster(&model, &workload, &cfg, &arrivals).expect("valid");
        let b = simulate_cluster(&model, &workload, &cfg, &arrivals).expect("valid");
        prop_assert_eq!(&a, &b);
        let par = simulate_cluster(&model, &workload, &cfg.clone().with_workers(3), &arrivals)
            .expect("valid");
        prop_assert_eq!(&a, &par, "worker count must not perturb results");
    }

    /// The rejoined accounting conserves requests under arbitrary plans,
    /// faults, failover policies and a mid-trace horizon cut.
    #[test]
    fn cluster_conserves_requests(
        workload in arb_workload(),
        plan in arb_plan(),
        base in arb_base_faults(),
        failover in arb_failover(),
        cut_draw in 0usize..2,
        seed in 0u64..200,
    ) {
        let cut = cut_draw == 1;
        let model = SystemModel::paper_defaults();
        let mut cfg = cluster_cfg(plan, base, failover);
        let arrivals = ArrivalProcess::Poisson { rate_qps: 250_000.0 }.sample_arrivals_us(150, seed);
        if cut {
            cfg = cfg.with_horizon(arrivals[arrivals.len() / 2]);
        }
        let report = simulate_cluster(&model, &workload, &cfg, &arrivals).expect("valid");
        prop_assert!(report.is_conserved());
        prop_assert_eq!(report.outcomes.total(), report.arrived);
        prop_assert_eq!(report.arrived + report.not_arrived(), report.offered);
        prop_assert_eq!(report.outcomes.completed, report.latency.count);
        if cut {
            prop_assert!(report.not_arrived() > 0, "the cut strands arrivals");
        }
        // Per-record outcomes agree with the counters.
        let by = |want: RequestOutcome| {
            report.records.iter().filter(|r| r.outcome == Some(want)).count()
        };
        prop_assert_eq!(by(RequestOutcome::Completed), report.outcomes.completed);
        prop_assert_eq!(by(RequestOutcome::Shed), report.outcomes.shed);
        prop_assert_eq!(by(RequestOutcome::TimedOut), report.outcomes.timed_out);
        prop_assert_eq!(
            by(RequestOutcome::InFlightAtHorizon),
            report.outcomes.in_flight_at_horizon
        );
    }
}

/// With replication 1, inert plans and static routing the cluster is
/// exactly N independent single-node simulators: every per-shard report
/// compares bit-identical to a standalone `simulate` on the derived
/// sub-trace.
#[test]
fn inert_cluster_decomposes_into_independent_runs() {
    let model = SystemModel::paper_defaults();
    let w = Workload::fox();
    let arrivals = ArrivalProcess::Poisson {
        rate_qps: 180_000.0,
    }
    .sample_arrivals_us(250, 9);
    for plan in [
        ShardPlan::hash(4, 1).expect("valid"),
        ShardPlan::round_robin(3, 1).expect("valid"),
        ShardPlan::hot_cold(4, 1, 10_000).expect("valid"),
    ] {
        let nodes = plan.nodes();
        let cfg = ClusterConfig::new(
            plan,
            vec![NodeSpec::paper(4); nodes],
            DesignPoint::Tdimm,
            BatchPolicy::new(16, 250.0),
        )
        .with_failover(FailoverPolicy::None);
        let report = simulate_cluster(&model, &w, &cfg, &arrivals).expect("valid");
        let traces = shard_traces(&cfg, &w, &arrivals).expect("valid");
        let shard_model = model.clone().with_node_dimms(SystemModel::PAPER_NODE_DIMMS);
        for (node, trace) in traces.iter().enumerate().take(nodes) {
            let independent =
                simulate(&shard_model, &w, &shard_sim_config(&cfg, node), trace).expect("valid");
            assert_eq!(
                report.shards[node].report, independent,
                "shard {node} diverged from its independent run"
            );
        }
    }
}

/// Availability at the SLA never rises with the per-node DIMM fault rate:
/// `for_node` preserves the thinning construction, so each node's failure
/// set nests across rates.
#[test]
fn availability_is_monotone_in_fault_rate() {
    let model = SystemModel::paper_defaults();
    let w = Workload::facebook();
    let arrivals = ArrivalProcess::Poisson {
        rate_qps: 250_000.0,
    }
    .sample_arrivals_us(400, 42);
    for failover in [FailoverPolicy::None, FailoverPolicy::Reroute] {
        let mut prev = f64::INFINITY;
        for rate in [0.0, 0.25, 0.5, 1.0] {
            let mut base = FaultPlan::dimm_faults(0xfa, rate);
            base.dimms = 2;
            base.dimm_candidate_gap_us = 250.0;
            base.dimm_repair_us = 2_500.0;
            let cfg = cluster_cfg(ShardPlan::hash(3, 2).expect("valid"), base, failover);
            let report = simulate_cluster(&model, &w, &cfg, &arrivals).expect("valid");
            assert!(report.is_conserved());
            let avail = report.availability_at(3_000.0);
            assert!(
                avail <= prev + 1e-9,
                "{failover:?}: availability rose from {prev:.4} to {avail:.4} at rate {rate}"
            );
            prev = avail;
        }
    }
}

/// Every node dead for the whole trace: with static routing and no
/// replicas everything is shed at the router, and the report still
/// carries finite metrics (availability 0, default latency summary) —
/// the all-shed contract at cluster scale.
#[test]
fn all_dead_cluster_sheds_everything_with_finite_metrics() {
    let model = SystemModel::paper_defaults();
    let w = Workload::ncf();
    let arrivals = ArrivalProcess::Poisson {
        rate_qps: 100_000.0,
    }
    .sample_arrivals_us(60, 4);
    let end = arrivals.last().copied().expect("nonempty") + 1.0;
    let dead = FaultPlan::none().with_node_outage(NodeOutage {
        start_us: 0.0,
        duration_us: end,
    });
    let nodes = (0..3)
        .map(|_| NodeSpec::paper(2).with_faults(dead))
        .collect();
    let cfg = ClusterConfig::new(
        ShardPlan::hash(3, 1).expect("valid"),
        nodes,
        DesignPoint::Tdimm,
        BatchPolicy::new(16, 250.0),
    )
    .with_failover(FailoverPolicy::None);
    let report = simulate_cluster(&model, &w, &cfg, &arrivals).expect("valid");
    assert!(report.is_conserved());
    assert_eq!(report.completed, 0);
    assert_eq!(report.outcomes.shed, report.arrived);
    assert_eq!(report.routing.router_shed, report.arrived);
    assert_eq!(report.availability, 0.0);
    assert_eq!(report.availability_at(1_000.0), 0.0);
    assert!(report.availability_at(f64::INFINITY).is_finite());
    assert_eq!(report.latency.count, 0);
    assert_eq!(
        report.latency.p99_us, 0.0,
        "empty summary stays at defaults"
    );
    assert_eq!(report.goodput_qps, 0.0);
    assert_eq!(report.shed_rate, 1.0);
    assert!(report.routing.mean_fanout == 0.0, "no routed requests");
}
