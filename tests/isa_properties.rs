//! Property-based tests over the TensorISA: wire-format round-trips,
//! slice-decomposition invariants, and executor-vs-golden equivalence.

use proptest::prelude::*;

use tensordimm::isa::{
    decode, decode_bytes, encode, execute_on_dimm, execute_on_node, AccessPlan, DimmContext,
    EncodedInstruction, Instruction, IsaError, ReduceOp, TensorMemory, VecMemory,
};

fn arb_reduce_op() -> impl Strategy<Value = ReduceOp> {
    prop_oneof![
        Just(ReduceOp::Add),
        Just(ReduceOp::Sub),
        Just(ReduceOp::Mul),
        Just(ReduceOp::Min),
        Just(ReduceOp::Max),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let gather = (
        0u64..1 << 30,
        0u64..1 << 30,
        0u64..1 << 30,
        1u64..1 << 20,
        1u64..1024,
    )
        .prop_map(|(table_base, idx_base, output_base, count, vec_blocks)| {
            Instruction::Gather {
                table_base,
                idx_base,
                output_base,
                count,
                vec_blocks,
            }
        });
    let reduce = (
        0u64..1 << 30,
        0u64..1 << 30,
        0u64..1 << 30,
        1u64..1 << 20,
        arb_reduce_op(),
    )
        .prop_map(
            |(input1, input2, output_base, count, op)| Instruction::Reduce {
                input1,
                input2,
                output_base,
                count,
                op,
            },
        );
    let average = (
        0u64..1 << 30,
        0u64..1 << 30,
        1u64..1 << 16,
        1u64..256,
        1u64..1024,
    )
        .prop_map(
            |(input_base, output_base, count, group, vec_blocks)| Instruction::Average {
                input_base,
                output_base,
                count,
                group,
                vec_blocks,
            },
        );
    prop_oneof![gather, reduce, average]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every instruction survives the wire format bit-exactly.
    #[test]
    fn wire_roundtrip(instr in arb_instruction()) {
        let wire = encode(&instr).expect("fields fit the format by construction");
        prop_assert_eq!(decode(&wire).expect("just encoded"), instr);
    }

    /// The byte-level wire format also round-trips bit-exactly: encode →
    /// serialize → deserialize → decode is the identity.
    #[test]
    fn wire_byte_roundtrip(instr in arb_instruction()) {
        let bytes = encode(&instr).expect("fields fit").to_bytes();
        prop_assert_eq!(bytes.len(), EncodedInstruction::BYTES);
        prop_assert_eq!(decode_bytes(&bytes).expect("just serialized"), instr);
    }

    /// Any truncated (or padded) buffer is rejected with `WireLength` —
    /// never mis-parsed, never panicking.
    #[test]
    fn truncated_buffers_rejected(instr in arb_instruction(), cut in 0usize..40) {
        let bytes = encode(&instr).expect("fields fit").to_bytes();
        prop_assert_eq!(
            decode_bytes(&bytes[..cut]),
            Err(IsaError::WireLength { len: cut, expected: EncodedInstruction::BYTES })
        );
        let mut padded = bytes.to_vec();
        padded.extend_from_slice(&bytes[..cut.max(1)]);
        let verdict = decode_bytes(&padded);
        prop_assert!(
            matches!(verdict, Err(IsaError::WireLength { .. })),
            "padded buffer was accepted: {verdict:?}"
        );
    }

    /// Corrupting any single byte of a valid wire never panics: the result
    /// is either a clean decode error or a decoded instruction that
    /// re-encodes onto the observed bytes (i.e. the corruption landed on a
    /// meaningful field, not in dead padding the decoder ignores —
    /// AVERAGE's unused AUX word and REDUCE's vec_blocks lanes are the
    /// exceptions that decode but re-encode canonically).
    #[test]
    fn corrupted_buffers_never_panic(
        instr in arb_instruction(),
        pos in 0usize..40,
        flip in 1u8..255,
    ) {
        let mut bytes = encode(&instr).expect("fields fit").to_bytes();
        bytes[pos] ^= flip;
        match decode_bytes(&bytes) {
            Err(_) => {}
            Ok(decoded) => {
                // A successful decode must be internally consistent: the
                // instruction re-encodes without a field overflow.
                let reencoded = encode(&decoded).expect("decoded fields fit the format");
                prop_assert!(!reencoded.to_bytes().is_empty());
            }
        }
    }

    /// Fully arbitrary 40-byte garbage never panics the decoder.
    #[test]
    fn random_buffers_never_panic(
        words in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let wire = EncodedInstruction::from_words([words.0, words.1, words.2, words.3, words.4]);
        let _ = decode_bytes(&wire.to_bytes());
    }

    /// Executing slices tid = 0..node_dim in *any* order produces the same
    /// memory as the reference whole-node execution: slices are disjoint.
    #[test]
    fn slice_order_is_irrelevant(
        seed in 0u64..1000,
        node_dim in 1u64..9,
        perm_seed in 0u64..1000,
    ) {
        let vec_blocks = node_dim * 2;
        let count = 8u64;
        let mut base = VecMemory::new(8192);
        for r in 0..32u64 {
            for b in 0..vec_blocks {
                base.write_f32(r * vec_blocks + b, [(r as f32) + seed as f32; 16]);
            }
        }
        let idx: Vec<u32> = (0..count).map(|i| ((i * 7 + seed) % 32) as u32).collect();
        base.write_u32_slice(4096, &idx);
        let instr = Instruction::Gather {
            table_base: 0,
            idx_base: 4096,
            // Tensor bases must be stripe-aligned (multiples of node_dim).
            output_base: node_dim * 700,
            count,
            vec_blocks,
        };

        let mut reference = base.clone();
        execute_on_node(&instr, &mut reference, node_dim).expect("valid");

        // A permuted slice order.
        let mut order: Vec<u64> = (0..node_dim).collect();
        let n = order.len();
        for i in 0..n {
            let j = ((perm_seed as usize) + i * 31) % n;
            order.swap(i, j);
        }
        let mut permuted = base.clone();
        for tid in order {
            execute_on_dimm(&instr, &mut permuted, DimmContext::new(node_dim, tid))
                .expect("valid");
        }
        prop_assert_eq!(reference, permuted);
    }

    /// The access plan counts exactly the traffic the executor performs.
    #[test]
    fn plan_matches_execution(
        count in 1u64..64,
        node_dim in 1u64..9,
        op in arb_reduce_op(),
    ) {
        let blocks = count * node_dim;
        let mut mem = VecMemory::new(1 << 14);
        let instr = Instruction::Reduce {
            input1: 0,
            input2: blocks,
            output_base: 2 * blocks,
            count: blocks,
            op,
        };
        for tid in 0..node_dim {
            let ctx = DimmContext::new(node_dim, tid);
            let plan = AccessPlan::for_dimm(&instr, ctx, None).expect("valid");
            let summary = execute_on_dimm(&instr, &mut mem, ctx).expect("valid");
            prop_assert_eq!(plan.reads(), summary.blocks_read);
            prop_assert_eq!(plan.writes(), summary.blocks_written);
        }
    }

    /// Misalignment is always rejected, never silently mis-executed.
    #[test]
    fn misaligned_instructions_rejected(
        node_dim in 2u64..33,
        off in 1u64..32,
    ) {
        prop_assume!(off % node_dim != 0);
        let instr = Instruction::Reduce {
            input1: off,
            input2: 0,
            output_base: 0,
            count: node_dim,
            op: ReduceOp::Add,
        };
        let mut mem = VecMemory::new(4096);
        prop_assert!(execute_on_node(&instr, &mut mem, node_dim).is_err());
    }
}
