//! Equivalence of the event-driven DRAM engine against the tick oracle.
//!
//! The event-driven path (`TraceRunner::run`, `MemorySystem::advance_to`,
//! `push_blocking`, `run_to_completion`) must be *bit-identical* to
//! stepping one cycle at a time (`TraceRunner::run_ticked`,
//! `run_to_completion_ticked`): same completions in the same order, same
//! final cycle, same `ChannelStats` down to `busy_cycles`. These tests
//! drive both paths over randomized traces spanning every scheduler /
//! row-policy / refresh combination.

use proptest::prelude::*;

use tensordimm::dram::{
    Completion, DramConfig, MemoryStats, MemorySystem, Request, RowPolicy, SchedulerKind, Trace,
    TraceEntry, TraceRunner,
};

/// Run one trace through both engine paths and return
/// `(stats, completions, final_cycle, skipped)` per path.
fn both_paths(cfg: &DramConfig, trace: &Trace) -> [(MemoryStats, Vec<Completion>, u64, u64); 2] {
    let mut out = Vec::new();
    for event_driven in [false, true] {
        let mem = MemorySystem::new(cfg.clone()).expect("valid config");
        let mut runner = TraceRunner::new(mem);
        let stats = if event_driven {
            runner.run(trace).expect("in range")
        } else {
            runner.run_ticked(trace).expect("in range")
        };
        let memory = runner.memory_mut();
        let completions = memory.drain_completions();
        out.push((
            stats,
            completions,
            memory.cycle(),
            memory.idle_cycles_skipped(),
        ));
    }
    out.try_into().expect("two paths")
}

fn config(
    scheduler: SchedulerKind,
    row_policy: RowPolicy,
    refresh: bool,
    channels: usize,
) -> DramConfig {
    let mut cfg = if channels == 1 {
        DramConfig::ddr4_3200_channel()
    } else {
        DramConfig::cpu_memory(channels)
    };
    cfg.scheduler = scheduler;
    cfg.row_policy = row_policy;
    cfg.refresh_enabled = refresh;
    cfg
}

fn build_trace(ops: &[(u8, u64, u64)], capacity: u64) -> Trace {
    let mut not_before = 0u64;
    ops.iter()
        .map(|&(kind, addr_frac, gap)| {
            not_before += gap;
            let addr = (addr_frac % (capacity / 64)) * 64;
            TraceEntry {
                not_before,
                request: if kind % 2 == 0 {
                    Request::read(addr).with_id(addr_frac)
                } else {
                    Request::write(addr).with_id(addr_frac)
                },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed read/write traces, with and without arrival gaps,
    /// across every scheduler x row-policy x refresh combination: the two
    /// paths must agree bit-for-bit, and the event path must actually
    /// skip cycles whenever the trace leaves idle time.
    #[test]
    fn event_path_matches_tick_oracle(
        ops in prop::collection::vec((0u8..2, 0u64..u64::MAX, 0u64..400), 1..120),
        scheduler_pick in 0u8..2,
        policy_pick in 0u8..2,
        refresh in 0u8..2,
        channels_pick in 0u8..2,
    ) {
        let scheduler = if scheduler_pick == 0 { SchedulerKind::FrFcfs } else { SchedulerKind::Fcfs };
        let policy = if policy_pick == 0 { RowPolicy::OpenPage } else { RowPolicy::ClosedPage };
        let channels = if channels_pick == 0 { 1 } else { 2 };
        let cfg = config(scheduler, policy, refresh == 1, channels);
        let trace = build_trace(&ops, cfg.capacity_bytes());

        let [(o_stats, o_done, o_cycle, o_skip), (f_stats, f_done, f_cycle, f_skip)] =
            both_paths(&cfg, &trace);

        prop_assert_eq!(o_skip, 0, "oracle path must not skip");
        prop_assert_eq!(&o_stats, &f_stats, "stats diverged");
        prop_assert_eq!(o_done, f_done, "completion streams diverged");
        prop_assert_eq!(o_cycle, f_cycle, "final cycles diverged");
        prop_assert_eq!(o_stats.totals.reads + o_stats.totals.writes, trace.len() as u64);
        // Any arrival gap implies idle spans the fast path should jump.
        let gaps: u64 = ops.iter().map(|&(_, _, g)| g).sum();
        if gaps > 2_000 {
            prop_assert!(f_skip > 0, "no cycles skipped despite {gaps} gap cycles");
        }
    }

    /// Narrow address windows force row conflicts and bank contention —
    /// the regime where the keep-row-open heuristic, precharge timing,
    /// and write-drain watermarks all interact.
    #[test]
    fn event_path_matches_oracle_under_conflicts(
        ops in prop::collection::vec((0u8..2, 0u64..64, 0u64..8), 16..200),
        scheduler_pick in 0u8..2,
        refresh in 0u8..2,
    ) {
        let scheduler = if scheduler_pick == 0 { SchedulerKind::FrFcfs } else { SchedulerKind::Fcfs };
        let cfg = config(scheduler, RowPolicy::OpenPage, refresh == 1, 1);
        // Map the tiny address space over two rows of a few banks so open
        // rows are constantly contested.
        let window = 1u64 << 20;
        let conflict_ops: Vec<(u8, u64, u64)> = ops
            .iter()
            .map(|&(k, a, g)| (k, (a * 8191) % (window / 64), g))
            .collect();
        let trace = build_trace(&conflict_ops, window);

        let [(o_stats, o_done, o_cycle, _), (f_stats, f_done, f_cycle, _)] =
            both_paths(&cfg, &trace);
        prop_assert_eq!(&o_stats, &f_stats);
        prop_assert_eq!(o_done, f_done);
        prop_assert_eq!(o_cycle, f_cycle);
    }
}

/// A full-queue back-pressure replay: `push_blocking` (event path) and the
/// per-cycle retry loop must enqueue at identical cycles, which the
/// per-completion `enqueued_at` stamps make observable.
#[test]
fn back_pressure_enqueue_cycles_match() {
    let mut cfg = DramConfig::ddr4_3200_channel();
    cfg.read_queue_depth = 4;
    cfg.write_queue_depth = 4;
    cfg.write_high_watermark = 3;
    cfg.write_low_watermark = 1;
    let mut trace = Trace::new();
    for i in 0..256u64 {
        if i % 3 == 0 {
            trace.write((i * 131) % (1 << 22) * 64);
        } else {
            trace.read((i * 131) % (1 << 22) * 64);
        }
    }
    let [(o_stats, o_done, _, _), (f_stats, f_done, _, f_skip)] = both_paths(&cfg, &trace);
    assert_eq!(o_stats, f_stats);
    assert!(!o_done.is_empty());
    for (o, f) in o_done.iter().zip(&f_done) {
        assert_eq!(o.enqueued_at, f.enqueued_at, "enqueue cycle drift");
        assert_eq!(o.finished_at, f.finished_at, "finish cycle drift");
    }
    assert!(
        f_skip > 0,
        "tiny queues stall the producer; spans must skip"
    );
}

/// An empty trace is a no-op on both paths.
#[test]
fn empty_trace_is_noop() {
    let cfg = DramConfig::ddr4_3200_channel();
    let [(o_stats, o_done, o_cycle, _), (f_stats, f_done, f_cycle, _)] =
        both_paths(&cfg, &Trace::new());
    assert_eq!(o_stats, f_stats);
    assert_eq!(o_done, f_done);
    assert_eq!((o_cycle, f_cycle), (0, 0));
}

/// `advance_to` across several refresh windows on an idle system must
/// replay every refresh the oracle performs.
#[test]
fn idle_refresh_cadence_matches() {
    let cfg = DramConfig::ddr4_3200_channel();
    let horizon = 5 * cfg.timing.trefi;
    let mut oracle = MemorySystem::new(cfg.clone()).unwrap();
    for _ in 0..horizon {
        oracle.tick();
    }
    let mut fast = MemorySystem::new(cfg).unwrap();
    fast.advance_to(horizon);
    assert_eq!(oracle.stats(), fast.stats());
    assert!(oracle.stats().totals.refreshes > 0);
    assert!(fast.idle_cycles_skipped() > 0);
}
