//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides a minimal wall-clock harness with the same API shape the
//! workspace's benches use: `Criterion::benchmark_group`, group
//! `sample_size` / `throughput` / `bench_function` / `finish`,
//! `Bencher::iter`, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. It reports mean wall-clock time per iteration
//! (plus derived throughput) to stdout — no statistics, plots, or saved
//! baselines.

// Vendored stand-ins opt out of the workspace [lints] table (their
// public API intentionally omits Debug impls the real crates have)
// but still refuse unsafe code outright.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Input-batching hint for `Bencher::iter_batched`; only the variant names
/// matter here (batching granularity is ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Entry point handed to every registered bench function.
pub struct Criterion {
    /// Target number of timed samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one("", &name.into(), sample_size, None, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &name.into(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Drives the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Build a fresh input with `setup` for every call of `routine`; only
    /// `routine` is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // One warm-up pass, then `sample_size` timed iterations in one batch.
    let mut warmup = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);

    let mut timed = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut timed);
    let per_iter = timed.elapsed.as_secs_f64() / sample_size as f64;

    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:>10.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => {
            format!("  {:>10.0} elem/s", e as f64 / per_iter)
        }
        None => String::new(),
    };
    println!("{label:<40} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// Bundle bench functions into a single registration point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags cargo forwards (e.g. `--bench`).
            $( $group(); )+
        }
    };
}
