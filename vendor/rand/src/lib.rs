//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) slice of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], and [`Rng::gen_bool`]. The generator is
//! xoshiro256++, which is more than adequate for the simulator's traffic
//! synthesis and property tests. Streams are deterministic per seed.

// Vendored stand-ins opt out of the workspace [lints] table (their
// public API intentionally omits Debug impls the real crates have)
// but still refuse unsafe code outright.
#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from the "standard" distribution
/// (`Rng::gen`): floats in `[0, 1)`, integers over their full range.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i8 : u8, i16 : u16, i32 : u32, i64 : u64, isize : usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::from_rng(rng);
                let v = self.start + unit * (self.end - self.start);
                // Rounding in the affine map can land exactly on `end`;
                // clamp to preserve the half-open contract.
                v.min(self.end.next_down())
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Draw from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64 like rand's `StdRng`
    /// contract (deterministic stream per `seed_from_u64` input).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-0.1f32..0.1);
            assert!((-0.1..0.1).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
