//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro with `#![proptest_config(..)]`, range and tuple
//! strategies, [`Just`], `prop_map`, [`prop_oneof!`], `prop::collection::vec`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its seed and case number instead;
//! * the case stream is a pure function of the test's name (FNV-1a hash), so
//!   failures reproduce bit-exactly on every machine with no
//!   `proptest-regressions/` persistence files.

// Vendored stand-ins opt out of the workspace [lints] table (their
// public API intentionally omits Debug impls the real crates have)
// but still refuse unsafe code outright.
#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Prng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with length drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut Prng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        pub use crate::collection;
    }
}
