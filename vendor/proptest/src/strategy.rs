//! Value-generation strategies: ranges, tuples, `Just`, `prop_map`, unions.

use crate::test_runner::Prng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic sampler over a seeded rng.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut Prng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true (re-draws up to a bound,
    /// then rejects the case).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut Prng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut Prng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut Prng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 consecutive draws");
    }
}

/// One boxed alternative of a [`Union`].
pub type UnionVariant<T> = Box<dyn Fn(&mut Prng) -> T>;

/// Uniform choice between boxed alternatives — built by [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<UnionVariant<T>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<UnionVariant<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut Prng) -> T {
        let i = rng.gen_range(0..self.variants.len());
        (self.variants[i])(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut Prng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut Prng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;

    fn sample(&self, rng: &mut Prng) -> T {
        (**self).sample(rng)
    }
}

/// Uniform choice among the variants, given as strategies of one common
/// value type. Heavier weighted forms (`w => strat`) are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                Box::new(move |rng: &mut $crate::test_runner::Prng| {
                    $crate::strategy::Strategy::sample(&s, rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::Prng) -> _>
            }),+
        ])
    };
}
