//! The case runner behind the [`proptest!`] macro.

pub use rand::rngs::StdRng as Prng;
pub use rand::SeedableRng;

/// Per-block configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` was violated — the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Stable 64-bit FNV-1a, used to derive a per-test seed from its name so
/// every machine replays the identical case stream.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Declare a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng: $crate::test_runner::Prng =
                <$crate::test_runner::Prng as $crate::test_runner::SeedableRng>::seed_from_u64(__seed);
            let ( $( $arg, )* ) = ( $( $strat, )* );
            // Like real proptest, a prop_assume! rejection does not consume
            // the case budget: rejected draws are replaced with fresh ones,
            // up to a global cap that catches over-restrictive assumptions.
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(10).max(1000);
            while __passed < __config.cases {
                assert!(
                    __attempts < __max_attempts,
                    "proptest: gave up after {} draws with only {}/{} cases \
                     accepted — prop_assume! rejects too much",
                    __attempts, __passed, __config.cases
                );
                __attempts += 1;
                $(
                    let $arg = $crate::strategy::Strategy::sample(&$arg, &mut __rng);
                )*
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {
                        __passed += 1;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} failed (seed {:#x}): {}",
                            __passed + 1, __config.cases, __seed, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current proptest case instead of panicking
/// directly (the runner attaches seed/case diagnostics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*))
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
