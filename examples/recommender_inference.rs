//! End-to-end recommender inference (the paper's Fig. 2 pipeline),
//! functionally executed on the TensorNode, then compared across the five
//! system design points.
//!
//! Run with: `cargo run --release --example recommender_inference`

use tensordimm::core::{TensorNode, TensorNodeConfig};
use tensordimm::embedding::{Distribution, IndexStream};
use tensordimm::models::{Mlp, Workload};
use tensordimm::system::{DesignPoint, SystemModel};

const BATCH: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Facebook-style workload (Table 2): 8 tables, 25 lookups pooled per
    // table per sample. We scale the tables down so the functional demo
    // stays fast; traffic per inference is shape-identical.
    let workload = Workload::facebook();
    let rows = 8_000u64;

    println!(
        "workload {}: {} tables x {} lookups/sample, dim {}",
        workload.name, workload.tables, workload.lookups_per_table, workload.embedding_dim
    );

    // ---- Step 1+2 (Fig. 2): embedding lookups + tensor manipulation,
    // near-memory on the TensorNode via the embedding-layer runtime API.
    let mut node = TensorNode::new(TensorNodeConfig::paper().with_pool_blocks(1 << 22))?;
    let mut stream = IndexStream::new(Distribution::Zipfian { s: 0.9 }, rows, 99);
    let mut tables = Vec::new();
    let mut indices_per_table = Vec::new();
    for t in 0..workload.tables {
        let table = node.create_table(&format!("table{t}"), rows, workload.embedding_dim)?;
        node.fill_table(&table, move |r, c| {
            ((r * 31 + c as u64 * 7 + t as u64) % 1000) as f32 / 1000.0
        })?;
        tables.push(table);
        indices_per_table.push(stream.multi_hot(BATCH, workload.lookups_per_table));
    }
    let features_handle = node.embedding_layer(
        &tables,
        &indices_per_table,
        workload.lookups_per_table as u64,
    )?;
    let near_memory_us: f64 = node
        .reports()
        .iter()
        .filter_map(|r| r.elapsed_ns())
        .sum::<f64>()
        / 1e3;
    let energy_uj: f64 = node
        .reports()
        .iter()
        .filter_map(|r| r.energy())
        .map(|e| e.total_nj() / 1e3)
        .sum();
    println!(
        "near-memory embedding layer: {} TensorISA instructions, {:.1} us, {:.1} uJ simulated",
        node.reports().len(),
        near_memory_us,
        energy_uj
    );

    // ---- Step 3 (Fig. 2): feature interaction + DNN on the GPU.
    let features = node.read_features(&features_handle, workload.tables as u64)?;
    let mlp = Mlp::seeded(workload.mlp.clone(), 2024);
    let scores = mlp.forward_batch(&features)?;
    println!(
        "CTR scores for {} samples: min {:.4}, max {:.4}",
        BATCH,
        scores.iter().cloned().fold(f64::INFINITY as f32, f32::min),
        scores.iter().cloned().fold(0.0f32, f32::max)
    );

    // ---- How would this inference perform on each system design?
    println!();
    println!("modeled end-to-end latency at production scale (batch 64, 5M-row tables):");
    let model = SystemModel::paper_defaults();
    let oracle = model
        .evaluate(&workload, 64, DesignPoint::GpuOnly)
        .total_us();
    for design in DesignPoint::all() {
        let b = model.evaluate(&workload, 64, design);
        println!(
            "  {:>9}: {:>8.1} us  (lookup {:>7.1}, copy {:>7.1}, dnn {:>6.1})  {:>5.2}x vs oracle",
            design.label(),
            b.total_us(),
            b.lookup_us,
            b.transfer_us,
            b.dnn_us,
            b.total_us() / oracle
        );
    }
    Ok(())
}
