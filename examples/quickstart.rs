//! Quickstart: stand up a TensorNode, store an embedding table, and run
//! the three TensorISA operations with per-op timing reports.
//!
//! Run with: `cargo run --release --example quickstart`

use tensordimm::core::{ReduceOp, TensorNode, TensorNodeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table 1 node: 32 TensorDIMMs of DDR4-3200, 819.2 GB/s.
    let mut node = TensorNode::new(TensorNodeConfig::paper())?;
    println!(
        "TensorNode: {} TensorDIMMs, {:.1} GB/s aggregate, {:.0} W",
        node.dimms(),
        node.peak_gbps(),
        node.power_watts()
    );

    // An embedding table: 10k users, dimension 512 (2 KiB vectors).
    let users = node.create_table("users", 10_000, 512)?;
    node.fill_table(&users, |row, col| (row as f32).sin() + col as f32 * 1e-3)?;
    println!(
        "table 'users': {} rows x dim {} = {:.1} MiB in the pool",
        users.rows(),
        users.dim(),
        users.stored_bytes() as f64 / (1 << 20) as f64
    );

    // GATHER a batch of 64 lookups, 8 pooled per sample (multi-hot).
    let indices: Vec<u64> = (0..512u64).map(|i| (i * 37) % 10_000).collect();
    let gathered = node.gather(&users, &indices)?;
    print_last(&node, "GATHER");

    // AVERAGE pools each group of 8 into one embedding.
    let pooled = node.average(&gathered, 8)?;
    print_last(&node, "AVERAGE");

    // REDUCE combines the pooled tensor with itself element-wise.
    let combined = node.reduce(&pooled, &pooled, ReduceOp::Add)?;
    print_last(&node, "REDUCE");

    // Ship the result to a GPU over NVLINK and read it back on the host.
    let link = tensordimm::interconnect::Link::nvlink2_x6();
    let transfer = node.copy_to_gpu(&combined, &link);
    println!(
        "NVLINK transfer: {} KiB in {:.1} us ({:.1} GB/s)",
        transfer.bytes / 1024,
        transfer.time_us,
        transfer.achieved_gbps
    );

    let host = node.read_tensor(&combined)?;
    println!(
        "result tensor: {} vectors x dim {} (first value {:.4})",
        combined.count(),
        combined.dim(),
        host[0]
    );
    Ok(())
}

fn print_last(node: &TensorNode, what: &str) {
    let report = node.last_report().expect("an op just ran");
    println!(
        "{what}: {} blocks moved, {:.1} us near-memory, {:.0} GB/s across the node",
        report.exec.blocks_read + report.exec.blocks_written,
        report.elapsed_ns().unwrap_or(0.0) / 1e3,
        report.node_gbps().unwrap_or(0.0),
    );
}
