//! A tour of the TensorISA: wire encoding, broadcast execution, and how
//! each DIMM's slice composes into the full operation (paper Figs. 8-9).
//!
//! Run with: `cargo run --example tensor_isa_tour`

use tensordimm::isa::{
    decode, encode, execute_on_dimm, DimmContext, Instruction, ReduceOp, TensorMemory, VecMemory,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node_dim = 4u64; // four TensorDIMMs
    let vec_blocks = 4u64; // 256-byte embeddings

    // A memory pool with an 8-row table: row r holds the value r.
    let mut mem = VecMemory::new(4096);
    for r in 0..8u64 {
        for b in 0..vec_blocks {
            mem.write_f32(r * vec_blocks + b, [r as f32; 16]);
        }
    }
    // The replicated index list {6, 1, 3, 6} at block 512.
    mem.write_u32_slice(512, &[6, 1, 3, 6]);

    let gather = Instruction::Gather {
        table_base: 0,
        idx_base: 512,
        output_base: 1024,
        count: 4,
        vec_blocks,
    };

    // 1) The instruction crosses the wire exactly as a GPU runtime would
    //    ship it (Fig. 8's format).
    let wire = encode(&gather)?;
    println!("GATHER on the wire: {:016x?}", wire.words());
    let decoded = decode(&wire)?;
    assert_eq!(decoded, gather);

    // 2) Broadcast: every DIMM executes its own stripe; slices are
    //    disjoint and complete.
    for tid in 0..node_dim {
        let summary = execute_on_dimm(&decoded, &mut mem, DimmContext::new(node_dim, tid))?;
        println!(
            "DIMM {tid}: read {} blocks, wrote {} blocks (its 1/{} stripe)",
            summary.blocks_read, summary.blocks_written, node_dim
        );
    }
    println!(
        "gathered rows: {:?}",
        (0..4u64)
            .map(|i| mem.read_f32(1024 + i * vec_blocks)[0])
            .collect::<Vec<_>>()
    );

    // 3) REDUCE the gathered tensor with itself (element-wise max).
    let reduce = Instruction::Reduce {
        input1: 1024,
        input2: 1024,
        output_base: 2048,
        count: 4 * vec_blocks,
        op: ReduceOp::Max,
    };
    let wire = encode(&reduce)?;
    println!("REDUCE.max on the wire: {:016x?}", wire.words());
    for tid in 0..node_dim {
        execute_on_dimm(&decode(&wire)?, &mut mem, DimmContext::new(node_dim, tid))?;
    }
    println!("reduced row 0 value: {}", mem.read_f32(2048)[0]);

    // 4) AVERAGE pools the four gathered rows into one (Fig. 9c).
    let average = Instruction::Average {
        input_base: 1024,
        output_base: 3072,
        count: 1,
        group: 4,
        vec_blocks,
    };
    for tid in 0..node_dim {
        execute_on_dimm(&average, &mut mem, DimmContext::new(node_dim, tid))?;
    }
    println!(
        "average of rows [6,1,3,6] = {} (expected 4.0)",
        mem.read_f32(3072)[0]
    );
    Ok(())
}
