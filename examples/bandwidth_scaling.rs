//! Memory-bandwidth scaling with DIMM count — the paper's core hardware
//! claim (Section 4.2), measured on the cycle-level DRAM simulator.
//!
//! Run with: `cargo run --release --example bandwidth_scaling`

use tensordimm::core::{TensorNode, TensorNodeConfig};
use tensordimm::nmp::DimmPowerModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TensorNode bandwidth scaling (GATHER of 2048 dim-512 embeddings)");
    println!();
    println!(
        "{:>6} | {:>11} {:>13} {:>13} {:>8}",
        "DIMMs", "peak (GB/s)", "GATHER (GB/s)", "REDUCE (GB/s)", "power(W)"
    );
    for dimms in [8u64, 16, 32, 64] {
        let cfg = TensorNodeConfig::paper()
            .with_dimms(dimms)
            .with_pool_blocks(1 << 23);
        let mut node = TensorNode::new(cfg)?;
        let table = node.create_table("t", 50_000, 512)?;
        // Timing-only run: the replay simulates one representative DIMM.
        let indices: Vec<u64> = (0..2048u64).map(|i| (i * 2654435761) % 50_000).collect();
        let gathered = node.gather(&table, &indices)?;
        let gather_gbps = node
            .last_report()
            .and_then(|r| r.node_gbps())
            .expect("replay timing enabled");
        let reduced = node.reduce(&gathered, &gathered, tensordimm::core::ReduceOp::Add)?;
        let reduce_gbps = node
            .last_report()
            .and_then(|r| r.node_gbps())
            .expect("replay timing enabled");
        let _ = reduced;
        println!(
            "{:>6} | {:>11.1} {:>13.0} {:>13.0} {:>8.0}",
            dimms,
            node.peak_gbps(),
            gather_gbps,
            reduce_gbps,
            DimmPowerModel::paper().node_watts(dimms as usize)
        );
    }
    println!();
    println!(
        "Aggregate NMP bandwidth grows with every DIMM added — unlike a CPU \
         memory channel, which time-multiplexes its fixed pins across DIMMs."
    );
    Ok(())
}
