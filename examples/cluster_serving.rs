//! Sharded cluster serving: replication and failover under a node outage.
//!
//! The paper evaluates one TensorNode; this example shards the embedding
//! tables across four and walks the robustness ladder the cluster crate
//! models. Every request samples its Zipf rows, fans out one sub-request
//! to each shard owning them, and rejoins at **max-of-shards** latency —
//! then node 0 dies for the whole trace and the placement choices start
//! to matter:
//!
//! 1. unreplicated hash placement with static routing — every request
//!    touching the dead shard is shed at the router,
//! 2. replication 2 with rerouting — traffic survives, but the dead
//!    node's whole load funnels onto its ring successor,
//! 3. the hot-cold split — the replicated Zipf head spreads across all
//!    survivors, so the failover hotspot (and the p99 behind it)
//!    shrinks.
//!
//! Run with: `cargo run --release --example cluster_serving`

use tensordimm::cluster::{simulate_cluster, ClusterConfig, FailoverPolicy, NodeSpec, ShardPlan};
use tensordimm::faults::{FaultPlan, NodeOutage};
use tensordimm::models::Workload;
use tensordimm::serving::{AdmissionPolicy, ArrivalProcess, BatchPolicy, RetryPolicy};
use tensordimm::system::{DesignPoint, SystemModel};

const NODES: usize = 4;
const GPUS: usize = 2;
const DIMMS: u64 = 8;
const REQUESTS: usize = 3_000;
const LOAD_QPS: f64 = 320_000.0;
const SLA_US: f64 = 3_000.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SystemModel::paper_defaults();
    let workload = Workload::facebook();
    let arrivals = ArrivalProcess::Poisson { rate_qps: LOAD_QPS }.sample_arrivals_us(REQUESTS, 42);
    let outage_end = arrivals.last().copied().unwrap_or(0.0) + 1.0;

    // Four lean nodes (2 GPUs, an 8-DIMM bandwidth slice each); node 0 is
    // dead before the first request arrives.
    let nodes = |dead: bool| -> Vec<NodeSpec> {
        let mut lean = NodeSpec::paper(GPUS);
        lean.dimms = DIMMS;
        let mut specs = vec![lean; NODES];
        if dead {
            specs[0] = specs[0].with_faults(FaultPlan::none().with_node_outage(NodeOutage {
                start_us: 0.0,
                duration_us: outage_end,
            }));
        }
        specs
    };
    let cfg = |plan: ShardPlan, dead: bool, failover: FailoverPolicy| -> ClusterConfig {
        ClusterConfig::new(
            plan,
            nodes(dead),
            DesignPoint::Tdimm,
            BatchPolicy::new(32, 300.0),
        )
        .with_retry(RetryPolicy::none().with_deadline(SLA_US))
        .with_admission(AdmissionPolicy::bounded(256))
        .with_failover(failover)
        .with_lookups(2, 0.9, 0x7e50)
    };

    println!(
        "Cluster serving: {NODES}x({GPUS} GPU, {DIMMS}-DIMM) nodes, Facebook, \
         {REQUESTS} requests at {LOAD_QPS:.0} qps, SLA {SLA_US:.0} µs"
    );
    println!(
        "{:<34} {:>13} {:>9} {:>9} {:>8} {:>10}",
        "scenario", "availability", "shed%", "rerouted", "fanout", "p99 µs"
    );

    let scenarios: [(&str, ShardPlan, bool, FailoverPolicy); 4] = [
        (
            "healthy, hash r1",
            ShardPlan::hash(NODES, 1)?,
            false,
            FailoverPolicy::None,
        ),
        (
            "node 0 dead, hash r1, static",
            ShardPlan::hash(NODES, 1)?,
            true,
            FailoverPolicy::None,
        ),
        (
            "node 0 dead, hash r2, reroute",
            ShardPlan::hash(NODES, 2)?,
            true,
            FailoverPolicy::Reroute,
        ),
        (
            "node 0 dead, hot-cold r2, reroute",
            ShardPlan::hot_cold(NODES, 2, 500_000)?,
            true,
            FailoverPolicy::Reroute,
        ),
    ];
    let mut last = None;
    for (label, plan, dead, failover) in scenarios {
        let report = simulate_cluster(&model, &workload, &cfg(plan, dead, failover), &arrivals)?;
        assert!(report.is_conserved(), "cluster accounting must balance");
        println!(
            "{:<34} {:>13.4} {:>9.2} {:>9} {:>8.2} {:>10.1}",
            label,
            report.availability_at(SLA_US),
            100.0 * report.shed_rate,
            report.routing.rerouted_requests,
            report.routing.mean_fanout,
            report.latency.p99_us
        );
        last = Some(report);
    }

    // The hot-cold run is still live here: show where the failover load
    // actually went.
    let hotcold = last.expect("four scenarios ran");
    println!();
    println!("hot-cold failover load per shard (node 0 dead):");
    for shard in &hotcold.shards {
        println!(
            "  node {}: {:>5} sub-requests, p99 {:>7.1} µs",
            shard.node, shard.subrequests, shard.report.latency.p99_us
        );
    }
    Ok(())
}
