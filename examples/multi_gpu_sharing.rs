//! Multiple GPUs sharing one TensorNode: when does the node's NVSwitch
//! port saturate?
//!
//! The paper attaches the TensorNode as one endpoint of the GPU-side
//! switch (Fig. 6c). With NMP reduction, each inference ships only the
//! pooled tensor, so one node port sustains many concurrent GPUs; without
//! it (PMEM), raw gathered embeddings saturate the port almost
//! immediately.
//!
//! Run with: `cargo run --release --example multi_gpu_sharing`

use tensordimm::interconnect::{Flow, Link, Switch};
use tensordimm::models::Workload;

const NODE_PORT: usize = 0;
const BATCH: usize = 64;

fn serve(gpus: usize, bytes_per_inference: u64, switch: &Switch) -> f64 {
    // Every GPU pulls one inference's embedding payload from the node
    // concurrently; the slowest flow gates the round.
    let flows: Vec<Flow> = (0..gpus)
        .map(|g| Flow {
            from: NODE_PORT,
            to: g + 1,
            bytes: bytes_per_inference,
        })
        .collect();
    let times = switch
        .concurrent_transfer_us(&flows)
        .expect("ports in range");
    times.into_iter().fold(0.0, f64::max)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let switch = Switch::new(17, Link::nvlink2_x6())?; // node + 16 GPUs (DGX-2)
    let w = Workload::facebook();
    let pooled = w.pooled_bytes(BATCH); // TDIMM ships this
    let gathered = w.gathered_bytes(BATCH); // PMEM ships this

    println!(
        "Facebook workload, batch {BATCH}: pooled {} KiB vs gathered {} KiB per inference",
        pooled / 1024,
        gathered / 1024
    );
    println!();
    println!(
        "{:>5} | {:>16} {:>18} | {:>16} {:>18}",
        "GPUs", "TDIMM round (us)", "TDIMM inf/s/node", "PMEM round (us)", "PMEM inf/s/node"
    );
    for gpus in [1usize, 2, 4, 8, 16] {
        let t_tdimm = serve(gpus, pooled, &switch);
        let t_pmem = serve(gpus, gathered, &switch);
        println!(
            "{:>5} | {:>16.1} {:>18.0} | {:>16.1} {:>18.0}",
            gpus,
            t_tdimm,
            gpus as f64 / (t_tdimm * 1e-6),
            t_pmem,
            gpus as f64 / (t_pmem * 1e-6)
        );
    }
    println!();
    println!(
        "The x{} communication compression of near-memory reduction is what \
         lets one TensorNode feed a whole DGX-2's worth of GPUs.",
        w.reduction_factor()
    );
    Ok(())
}
