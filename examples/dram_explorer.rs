//! Explore the DDR4 simulator substrate directly: access patterns, row
//! locality, scheduling, and the bank-parallelism effects TensorDIMM
//! exploits.
//!
//! Run with: `cargo run --release --example dram_explorer`

use tensordimm::dram::{DramConfig, MemorySystem, Request, SchedulerKind};
use tensordimm::embedding::{Distribution, IndexStream};

fn run(label: &str, cfg: DramConfig, addrs: &[u64]) {
    let mut mem = MemorySystem::new(cfg).expect("valid config");
    for &a in addrs {
        mem.push_when_ready(Request::read(a));
    }
    mem.run_to_completion();
    let s = mem.stats();
    println!(
        "{label:<34} {:>7.1} GB/s  util {:>5.1}%  row-hit {:>5.1}%  lat {:>6.1} ns",
        s.achieved_gbps(),
        100.0 * s.utilization(),
        100.0 * s.row_hit_rate(),
        s.mean_read_latency_ns()
    );
}

fn main() {
    let cfg = DramConfig::ddr4_3200_channel();
    let capacity = cfg.capacity_bytes();
    println!(
        "One TensorDIMM-local DDR4-3200 channel: {} GiB, {:.1} GB/s peak",
        capacity >> 30,
        cfg.peak_gbps()
    );
    println!();

    // Sequential stream: the REDUCE/AVERAGE pattern.
    let seq: Vec<u64> = (0..16_384u64).map(|i| i * 64).collect();
    run("sequential stream", cfg.clone(), &seq);

    // Uniform-random 2 KiB embeddings: worst-case GATHER.
    let mut uniform = IndexStream::new(Distribution::Uniform, capacity / 2048, 1);
    let rand_vecs: Vec<u64> = uniform
        .batch(512)
        .into_iter()
        .flat_map(|row| (0..32u64).map(move |b| row * 2048 + b * 64))
        .collect();
    run("uniform gather (2KiB vectors)", cfg.clone(), &rand_vecs);

    // Zipfian gather: realistic recommendation traffic.
    let mut zipf = IndexStream::new(Distribution::Zipfian { s: 1.0 }, capacity / 2048, 1);
    let zipf_vecs: Vec<u64> = zipf
        .batch(512)
        .into_iter()
        .flat_map(|row| (0..32u64).map(move |b| row * 2048 + b * 64))
        .collect();
    run("zipfian gather (2KiB vectors)", cfg.clone(), &zipf_vecs);

    // Scheduler matters: strict FCFS on the uniform gather.
    run(
        "uniform gather, FCFS scheduler",
        cfg.clone().with_scheduler(SchedulerKind::Fcfs),
        &rand_vecs,
    );

    // Random single-block (64 B) reads: the activate-rate wall. Four
    // internal ranks (an LR-DIMM) hide it; a single rank cannot.
    let mut blocks = IndexStream::new(Distribution::Uniform, capacity / 64, 2);
    let rand_blocks: Vec<u64> = blocks.batch(16_384).iter().map(|b| b * 64).collect();
    run("random 64B reads, 4 ranks", cfg.clone(), &rand_blocks);

    let mut one_rank = cfg.clone();
    one_rank.geometry.ranks_per_channel = 1;
    one_rank.mapping = tensordimm::dram::MappingScheme::nmp_local(&one_rank.geometry);
    let small: Vec<u64> = rand_blocks
        .iter()
        .map(|a| a % one_rank.capacity_bytes())
        .collect();
    run("random 64B reads, single rank", one_rank, &small);

    println!();
    println!(
        "Streams ride open rows; random gathers recover bandwidth through \
         bank/rank parallelism — unless only one rank bounds the activate rate (tFAW)."
    );
}
