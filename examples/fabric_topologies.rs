//! Tour of the cycle-level interconnect fabric: route a broadcast over
//! `Line`, `Ring` and `FullyConnected` layouts, watch per-link traffic,
//! and compare the measured crossbar against the closed-form `Switch`.
//!
//! Run with: `cargo run --release --example fabric_topologies`

use tensordimm::interconnect::fabric::Fabric;
use tensordimm::interconnect::{Flow, Link, Switch, TopologyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let link = Link::nvlink2_x6();
    let nodes = 5; // node 0 is the TensorNode, 1..=4 are GPUs
    let bytes = 16u64 << 20;

    // The same broadcast — the TensorNode feeding every GPU 16 MiB — on
    // each physical layout.
    println!("TensorNode broadcast to {} GPUs, 16 MiB each:", nodes - 1);
    for kind in TopologyKind::all() {
        let mut fabric = Fabric::new(kind.build(nodes, link.clone())?);
        for gpu in 1..nodes {
            // The sender stalls only for the local handoff; transit is
            // the fabric's business.
            let receipt = fabric.inject(0, gpu, bytes)?;
            assert_eq!(receipt.handoff_us, fabric.topology().local_handoff_us());
        }
        let deliveries = fabric.run_until_idle(1.0)?;
        let slowest = deliveries
            .iter()
            .map(|d| d.delivered_us)
            .fold(0.0f64, f64::max);
        println!(
            "  {:>16}: slowest delivery {slowest:>7.1} µs",
            kind.to_string()
        );

        // Per-link traffic: on the line, everything funnels through the
        // 0→1 wire; the full crossbar spreads it over private links.
        let stats = fabric.stats();
        let busiest = stats
            .per_link
            .iter()
            .max_by_key(|(_, s)| (s.forwarded_bytes, s.peak_in_flight))
            .expect("every layout has links");
        println!(
            "  {:>16}  busiest link {}: {} msgs, {:.0} MiB, peak {} in flight",
            "",
            busiest.0,
            busiest.1.forwarded_messages,
            busiest.1.forwarded_bytes as f64 / (1 << 20) as f64,
            busiest.1.peak_in_flight
        );
    }

    // The fully-connected fabric is the measured twin of the analytic
    // Switch: same flows, agreement within a few percent.
    let switch = Switch::new(nodes, link.clone())?;
    let flows: Vec<Flow> = (1..nodes)
        .map(|g| Flow {
            from: 0,
            to: g,
            bytes,
        })
        .collect();
    let analytic = switch
        .concurrent_transfer_us(&flows)?
        .into_iter()
        .fold(0.0f64, f64::max);
    let mut fabric = Fabric::new(TopologyKind::FullyConnected.build(nodes, link)?);
    for g in 1..nodes {
        fabric.inject(0, g, bytes)?;
    }
    let measured = fabric
        .run_until_idle(analytic / 4096.0)?
        .into_iter()
        .map(|d| d.delivered_us)
        .fold(0.0f64, f64::max);
    let delta = 100.0 * (measured - analytic).abs() / analytic;
    println!();
    println!(
        "analytic Switch {analytic:.1} µs vs measured crossbar {measured:.1} µs ({delta:.1}% apart)"
    );
    assert!(delta < 10.0, "fabric and oracle should agree");
    Ok(())
}
