//! Request-level serving: how much traffic can each design absorb before
//! its p99 latency violates the SLA?
//!
//! The paper's Fig. 6c argues one TensorNode can feed many GPUs because
//! NMP reduction ships pooled instead of gathered tensors. This example
//! re-derives that argument at *request* granularity: individual queries
//! arrive (Poisson), a dynamic batcher coalesces them (max batch 32,
//! 300 µs window), free GPUs pull sealed batches, and node-backed designs
//! pay shared-node contention that grows with the batches in flight. The
//! sweep finds each design's sustainable QPS — the highest offered load
//! whose p99 still meets the SLA.
//!
//! Run with: `cargo run --release --example serving_sim`

use tensordimm::models::Workload;
use tensordimm::serving::{
    offered_load_sweep, offered_load_sweep_par, sustainable_qps, ArrivalProcess, BatchPolicy,
    RequestTrace, SimConfig,
};
use tensordimm::system::{DesignPoint, PricingBackend, SystemModel};

const GPUS: usize = 8;
const REQUESTS: usize = 2000;
const SEED: u64 = 0x5e7;
const SLA_P99_US: f64 = 1000.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SystemModel::paper_defaults();
    let workload = Workload::facebook();
    let policy = BatchPolicy::new(32, 300.0);

    // The traffic itself: Zipf-skewed popularity, bursty option shown below.
    let trace = RequestTrace::generate(
        &workload,
        ArrivalProcess::Poisson {
            rate_qps: 100_000.0,
        },
        REQUESTS,
        model.config().zipf_s,
        SEED,
    );
    println!(
        "Workload {} | {} GPUs sharing one TensorNode | batch <= {} or {} us window",
        workload.name, GPUS, policy.max_batch, policy.max_wait_us
    );
    println!(
        "Traffic: open-loop Poisson, Zipf(s={}) rows — {:.0}% of lookups hit the hottest 1%",
        trace.zipf_s,
        100.0 * trace.hot_lookup_share
    );
    println!();

    // Offered-load sweep per design.
    let rates: Vec<f64> = [
        25_000.0,
        50_000.0,
        100_000.0,
        150_000.0,
        200_000.0,
        250_000.0,
        300_000.0,
        400_000.0,
        500_000.0,
        600_000.0,
        800_000.0,
        1_200_000.0,
    ]
    .to_vec();
    let designs = [DesignPoint::Tdimm, DesignPoint::Pmem, DesignPoint::GpuOnly];

    println!(
        "{:>12} | {:>10} {:>10} {:>10} {:>11} {:>10} {:>9}",
        "offered qps",
        "TDIMM p99",
        "PMEM p99",
        "ORACLE p99",
        "TDIMM batch",
        "queue max",
        "(us/occ/#)"
    );
    // Sweep points are independent: fan them across the machine's cores
    // (results are bit-identical to the sequential path at any count).
    let workers = tensordimm::exec::worker_count(None);
    let mut sustainable = Vec::new();
    let mut all_points = Vec::new();
    for &design in &designs {
        let cfg = SimConfig::new(design, GPUS, policy);
        let points =
            offered_load_sweep_par(&model, &workload, &cfg, &rates, REQUESTS, SEED, workers)?;
        sustainable.push(sustainable_qps(&points, SLA_P99_US));
        all_points.push(points);
    }
    // The parallel harness's core promise, demonstrated on one design:
    // the sequential oracle produces the identical curve.
    let tdimm_cfg = SimConfig::new(DesignPoint::Tdimm, GPUS, policy);
    let sequential = offered_load_sweep(&model, &workload, &tdimm_cfg, &rates, REQUESTS, SEED)?;
    assert_eq!(
        sequential, all_points[0],
        "parallel sweep must be bit-identical to the sequential path"
    );
    for (i, &rate) in rates.iter().enumerate() {
        let t = &all_points[0][i].report;
        let p = &all_points[1][i].report;
        let o = &all_points[2][i].report;
        println!(
            "{:>12.0} | {:>10.0} {:>10.0} {:>10.0} {:>11.1} {:>10}",
            rate,
            t.latency.p99_us,
            p.latency.p99_us,
            o.latency.p99_us,
            t.batches.mean_occupancy,
            t.queue.max_depth,
        );
    }
    println!();

    let tdimm_qps = sustainable[0].unwrap_or(0.0);
    let pmem_qps = sustainable[1].unwrap_or(0.0);
    let oracle_qps = sustainable[2].unwrap_or(0.0);
    println!("Sustainable QPS at a p99 SLA of {SLA_P99_US:.0} us:");
    println!("  TDIMM    {tdimm_qps:>9.0} qps");
    println!("  PMEM     {pmem_qps:>9.0} qps");
    println!("  GPU-only {oracle_qps:>9.0} qps (unbuildable oracle)");
    let ratio = tdimm_qps / pmem_qps.max(1.0);
    println!();
    println!(
        "TDIMM sustains {ratio:.1}x the QPS of PMEM at the same SLA -> {}",
        if ratio >= 2.0 {
            "REPRODUCED (>= 2x)"
        } else {
            "NOT reproduced"
        }
    );

    // Burstiness check at TDIMM's sustainable load: same mean rate, flash
    // crowds of ~16 back-to-back requests.
    let bursty = ArrivalProcess::Bursty {
        rate_qps: tdimm_qps,
        mean_burst: 16.0,
    }
    .sample_arrivals_us(REQUESTS, SEED);
    let cfg = SimConfig::new(DesignPoint::Tdimm, GPUS, policy);
    let bursty_report = tensordimm::serving::simulate(&model, &workload, &cfg, &bursty)?;
    println!();
    println!(
        "Same mean load but bursty (mean burst 16): TDIMM p99 {:.0} us (Poisson: {:.0} us), \
         peak queue depth {} (batching absorbs the bursts)",
        bursty_report.latency.p99_us,
        all_points[0]
            .iter()
            .min_by(|a, b| {
                (a.offered_qps - tdimm_qps)
                    .abs()
                    .total_cmp(&(b.offered_qps - tdimm_qps).abs())
            })
            .map(|p| p.report.latency.p99_us)
            .unwrap_or(0.0),
        bursty_report.queue.max_depth,
    );

    // Backend cross-check: re-run one load point with batches priced by
    // the cycle-calibrated backend (each batch's Zipf gather trace
    // replayed on the event-driven DRAM/NMP co-simulator) instead of the
    // closed-form constants. The two must agree closely — the analytic
    // utilization factors were calibrated on the same simulator — and the
    // TDIMM-over-PMEM tail ordering must survive the swap.
    let check_rate = 100_000.0;
    let check_arrivals = ArrivalProcess::Poisson {
        rate_qps: check_rate,
    }
    .sample_arrivals_us(REQUESTS, SEED);
    println!();
    println!("Backend cross-check at {check_rate:.0} qps (p99 µs, analytic vs cycle-calibrated):");
    let mut cycle_p99 = Vec::new();
    for &design in &[DesignPoint::Tdimm, DesignPoint::Pmem] {
        let analytic_cfg = SimConfig::new(design, GPUS, policy);
        let cycle_cfg = analytic_cfg.with_pricing(PricingBackend::CycleCalibrated);
        let a = tensordimm::serving::simulate(&model, &workload, &analytic_cfg, &check_arrivals)?;
        let c = tensordimm::serving::simulate(&model, &workload, &cycle_cfg, &check_arrivals)?;
        println!(
            "  {:<6} {:>8.0} vs {:>8.0} ({:+.1}%)",
            design.label(),
            a.latency.p99_us,
            c.latency.p99_us,
            100.0 * (c.latency.p99_us - a.latency.p99_us) / a.latency.p99_us
        );
        cycle_p99.push(c.latency.p99_us);
    }
    assert!(
        cycle_p99[0] < cycle_p99[1],
        "cycle backend must preserve the TDIMM tail win: TDIMM p99 {:.0} vs PMEM p99 {:.0}",
        cycle_p99[0],
        cycle_p99[1]
    );

    assert!(
        ratio >= 2.0,
        "acceptance: TDIMM must sustain >= 2x PMEM's QPS at the SLA (got {ratio:.2}x)"
    );
    Ok(())
}
