//! Hot-row caching in the NMP gather path, RecNMP-style.
//!
//! Production embedding traffic is Zipf-skewed: a small head of rows
//! absorbs most lookups. A modest SRAM row cache in the DIMM's buffer
//! device can therefore short-circuit a large share of DRAM reads. This
//! example replays the same Zipf gather through the cycle-level NMP core
//! uncached and with growing hot-row caches, then prices a serving batch
//! through the cycle-calibrated backend both ways.
//!
//! Run with: `cargo run --release --example hot_row_cache`

use tensordimm::cache::HotRowCacheConfig;
use tensordimm::isa::{DimmContext, Instruction};
use tensordimm::models::Workload;
use tensordimm::nmp::{NmpConfig, NmpCore};
use tensordimm::serving::zipf_lookup_rows;
use tensordimm::system::{BatchPricer, CyclePricer, CyclePricerConfig, DesignPoint, SystemModel};

fn main() {
    // --- Raw replay: one DIMM, 2048 Zipf-0.9 lookups over 50k rows. ---
    let lookups = 2048usize;
    let table_rows = 50_000u64;
    let indices = zipf_lookup_rows(lookups, table_rows, 0.9, 0xcafe);
    let gather = Instruction::Gather {
        table_base: 0,
        idx_base: 1 << 27,
        output_base: 1 << 28,
        count: lookups as u64,
        vec_blocks: 32,
    };
    let ctx = DimmContext::new(32, 0);

    println!("Zipf-0.9 gather, {lookups} lookups over {table_rows} rows, one DIMM:");
    println!();
    println!(
        "{:>14} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "capacity_rows", "hit_rate", "dram_reads", "cycles", "DRAM GB/s", "delivered"
    );
    for capacity in [0u64, 64, 500, 4000] {
        let mut cfg = NmpConfig::paper();
        cfg.hot_rows = if capacity == 0 {
            HotRowCacheConfig::disabled()
        } else {
            HotRowCacheConfig::fully_associative(capacity)
        };
        let mut core = NmpCore::new(cfg).expect("valid config");
        let stats = core
            .run_instruction(&gather, ctx, Some(&indices))
            .expect("valid gather");
        println!(
            "{:>14} {:>9.1}% {:>10} {:>12} {:>12.2} {:>12.2}",
            capacity,
            100.0 * stats.hot_rows.hit_rate(),
            stats.reads,
            stats.cycles,
            stats.achieved_gbps(),
            stats.delivered_gbps(),
        );
    }
    println!();
    println!("(`delivered` counts SRAM hits as served traffic; `DRAM GB/s` is the bus alone.)");
    println!();

    // --- Serving view: the same knob through the cycle pricer. ---
    let model = SystemModel::paper_defaults();
    let w = Workload::facebook();
    let batch = 32;
    let price = |hot_rows: HotRowCacheConfig| {
        let mut cfg = CyclePricerConfig::paper_defaults();
        cfg.nmp.hot_rows = hot_rows;
        let pricer = CyclePricer::with_config(&model, cfg);
        let cost = pricer
            .price(&w, batch, DesignPoint::Tdimm, 8)
            .expect("valid batch");
        (cost.service_us, pricer.measured_hot_rows(&w, batch))
    };
    let (uncached_us, _) = price(HotRowCacheConfig::disabled());
    let (cached_us, hr) = price(HotRowCacheConfig::fully_associative(100_000));
    println!(
        "Facebook batch-{batch} TDIMM service (8 GPUs, cycle backend): \
         {uncached_us:.1} us uncached, {cached_us:.1} us with a 100k-row cache \
         ({:.1}% replay hit rate)",
        100.0 * hr.hit_rate()
    );
}
