#!/usr/bin/env bash
# Determinism lint for the simulation crates.
#
# The cycle-level engine must be a pure function of its inputs: identical
# configs and seeds produce bit-identical cycle counts on every machine,
# which is what the golden pins and the static-verifier agreement
# contract rely on. This lint denies the usual nondeterminism vectors in
# the simulation crates:
#
#   * wall-clock reads (std::time::{Instant, SystemTime}),
#   * thread identity (std::thread::current, ThreadId),
#   * hash-ordered containers (HashMap/HashSet — iteration order is
#     randomized per process; use BTreeMap/BTreeSet when order can reach
#     an output).
#
# Justified uses (keyed lookups that never iterate, test-only helpers)
# live in scripts/determinism_allowlist.txt as `path|pattern|reason`
# lines; stale entries fail the lint so the allowlist cannot rot.
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES="crates/dram/src crates/nmp/src crates/serving/src crates/system/src crates/faults/src crates/cluster/src"
PATTERNS='std::time|Instant::now|SystemTime|thread::current|ThreadId|HashMap|HashSet'
ALLOW=scripts/determinism_allowlist.txt

fail=0

hits=$(grep -rnE "$PATTERNS" $CRATES || true)
while IFS= read -r hit; do
    [ -z "$hit" ] && continue
    file=${hit%%:*}
    allowed=0
    while IFS='|' read -r apath apattern areason; do
        case "$apath" in ''|'#'*) continue ;; esac
        if [ "$file" = "$apath" ] && printf '%s' "$hit" | grep -qF "$apattern"; then
            allowed=1
            break
        fi
    done < "$ALLOW"
    if [ "$allowed" -eq 0 ]; then
        echo "determinism lint: disallowed pattern in simulation crate:" >&2
        echo "  $hit" >&2
        echo "  (deterministic alternative: BTreeMap/BTreeSet, explicit cycle counters," >&2
        echo "   seeded RNG — or add a justified 'path|pattern|reason' line to $ALLOW)" >&2
        fail=1
    fi
done <<< "$hits"

# An allowlist entry whose pattern no longer occurs in its file is rot:
# it would silently re-admit the pattern later. Fail so it gets pruned.
while IFS='|' read -r apath apattern areason; do
    case "$apath" in ''|'#'*) continue ;; esac
    if [ -z "$areason" ]; then
        echo "determinism lint: allowlist entry missing a reason: $apath|$apattern" >&2
        fail=1
        continue
    fi
    if ! grep -qF "$apattern" "$apath" 2>/dev/null; then
        echo "determinism lint: stale allowlist entry (pattern gone): $apath|$apattern" >&2
        fail=1
    fi
done < "$ALLOW"

[ "$fail" -eq 0 ] || exit 1
echo "determinism lint: OK ($(printf '%s\n' "$hits" | grep -c . || true) hits, all allowlisted)"
